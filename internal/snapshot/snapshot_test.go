package snapshot

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"lemp/internal/core"
	"lemp/internal/matrix"
)

// buildState makes a small tuned index state deterministically.
func buildState(t testing.TB) *core.State {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	p := matrix.New(8, 200)
	p.FillRandom(rng)
	for i := 0; i < 200; i++ { // skew lengths so several buckets form
		v := p.Vec(i)
		scale := math.Exp(0.9 * rng.NormFloat64())
		for f := range v {
			v[f] *= scale
		}
	}
	ix, err := core.NewIndex(p, core.Options{MinBucketSize: 10, SampleQueries: 8, TuneByCost: true})
	if err != nil {
		t.Fatal(err)
	}
	q := matrix.New(8, 20)
	q.FillRandom(rand.New(rand.NewSource(22)))
	if err := ix.PretuneTopK(q, 5); err != nil {
		t.Fatal(err)
	}
	return ix.State()
}

func TestWriteReadRoundTrip(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Opts != st.Opts {
		t.Errorf("options differ:\n got %+v\nwant %+v", got.Opts, st.Opts)
	}
	if got.Pretuned != st.Pretuned {
		t.Errorf("pretuned %v, want %v", got.Pretuned, st.Pretuned)
	}
	if got.Probe.R() != st.Probe.R() || got.Probe.N() != st.Probe.N() {
		t.Fatalf("probe %d×%d, want %d×%d", got.Probe.R(), got.Probe.N(), st.Probe.R(), st.Probe.N())
	}
	if !reflect.DeepEqual(got.Probe.Data(), st.Probe.Data()) {
		t.Error("probe data differs")
	}
	if !reflect.DeepEqual(got.Buckets, st.Buckets) {
		t.Error("bucket states differ")
	}
	// The parsed state must satisfy every structural invariant.
	if _, err := core.FromState(got); err != nil {
		t.Fatalf("FromState on round-tripped state: %v", err)
	}
}

func TestReadRejectsBadMagicAndVersion(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	if _, err := Read(bytes.NewReader([]byte("LEMPMAT1garbage..."))); err == nil {
		t.Error("matrix magic accepted as a snapshot")
	}
	bad := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(bad[8:12], VersionIDs+1)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("future format version accepted")
	}
}

// TestReadDetectsCorruption flips one byte at every offset of a valid
// snapshot: each flip must either be detected by Read/FromState or produce
// a state that still passes full validation (flips confined to unused
// padding would be acceptable — with this format there is none, so every
// accepted flip is a real failure).
func TestReadDetectsCorruption(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	step := 1
	if len(raw) > 1<<16 {
		step = len(raw) / (1 << 16)
	}
	for off := 0; off < len(raw); off += step {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x40
		got, err := Read(bytes.NewReader(bad))
		if err != nil {
			continue
		}
		if _, err := core.FromState(got); err == nil {
			t.Fatalf("bit flip at offset %d went undetected", off)
		}
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	st := buildState(t)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 4, len(Magic), 16, 40, len(raw) / 2, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
}

// FuzzRead feeds arbitrary bytes to the snapshot reader: malformed input
// must error — never panic, never allocate beyond what the input backs —
// and anything Read accepts must either build or be rejected by FromState
// without panicking.
func FuzzRead(f *testing.F) {
	st := buildState(f)
	var buf bytes.Buffer
	if err := Write(&buf, st); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte(Magic))
	f.Add([]byte{})
	// A header whose BUKT section claims huge sizes.
	crafted := append([]byte(nil), raw[:16]...)
	crafted = append(crafted, 'B', 'U', 'K', 'T', 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	f.Add(crafted)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if _, err := core.FromState(got); err != nil {
			return // rejected by structural validation, as designed
		}
	})
}
