package lsh

import (
	"math"
	"math/rand"
	"testing"

	"lemp/internal/vecmath"
)

func TestSignatureDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	h := NewHasher(8, 32, rng)
	v := []float64{1, -2, 3, 0.5, 0, -1, 2, 4}
	if h.Signature(v) != h.Signature(v) {
		t.Fatal("signature not deterministic")
	}
}

func TestIdenticalVectorsMatchAllBits(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	h := NewHasher(6, 32, rng)
	v := []float64{1, 2, 3, 4, 5, 6}
	w := []float64{2, 4, 6, 8, 10, 12} // same direction
	if m := Matches(h.Signature(v), h.Signature(w), 32); m != 32 {
		t.Errorf("parallel vectors match %d/32 bits", m)
	}
}

func TestOppositeVectorsMatchNoBits(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	h := NewHasher(5, 32, rng)
	v := []float64{1, 2, 3, 4, 5}
	w := []float64{-1, -2, -3, -4, -5}
	// Projections are never exactly 0 for random planes, so signs flip.
	if m := Matches(h.Signature(v), h.Signature(w), 32); m != 0 {
		t.Errorf("antiparallel vectors match %d/32 bits", m)
	}
}

func TestMatchFractionTracksCosine(t *testing.T) {
	// Empirical bit-agreement must track ρ(s) = 1 − arccos(s)/π.
	rng := rand.New(rand.NewSource(54))
	h := NewHasher(16, 64, rng)
	for _, target := range []float64{-0.5, 0, 0.5, 0.9} {
		var agree, total int
		for trial := 0; trial < 300; trial++ {
			a := randUnit(rng, 16)
			b := rotateToward(rng, a, target)
			agree += Matches(h.Signature(a), h.Signature(b), 64)
			total += 64
		}
		got := float64(agree) / float64(total)
		want := MatchProbability(target)
		if math.Abs(got-want) > 0.05 {
			t.Errorf("cos=%g: agreement %.3f, want %.3f", target, got, want)
		}
	}
}

func randUnit(rng *rand.Rand, r int) []float64 {
	v := make([]float64, r)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	vecmath.Normalize(v, v)
	return v
}

// rotateToward returns a unit vector with cosine ≈ c to a.
func rotateToward(rng *rand.Rand, a []float64, c float64) []float64 {
	// Gram-Schmidt a random direction against a, then combine.
	b := randUnit(rng, len(a))
	d := vecmath.Dot(a, b)
	for i := range b {
		b[i] -= d * a[i]
	}
	vecmath.Normalize(b, b)
	out := make([]float64, len(a))
	s := math.Sqrt(1 - c*c)
	for i := range out {
		out[i] = c*a[i] + s*b[i]
	}
	return out
}

func TestMatchProbabilityEndpoints(t *testing.T) {
	if p := MatchProbability(1); p != 1 {
		t.Errorf("ρ(1)=%g", p)
	}
	if p := MatchProbability(-1); p != 0 {
		t.Errorf("ρ(-1)=%g", p)
	}
	if p := MatchProbability(0); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("ρ(0)=%g", p)
	}
}

func TestPosteriorMonotoneInMatches(t *testing.T) {
	for _, threshold := range []float64{0.3, 0.6, 0.9} {
		prev := -1.0
		for m := 0; m <= 32; m++ {
			p := Posterior(threshold, m, 32)
			if p < prev-1e-9 {
				t.Fatalf("posterior not monotone at t=%g m=%d: %g < %g", threshold, m, p, prev)
			}
			prev = p
		}
	}
}

func TestPosteriorSanity(t *testing.T) {
	// All 32 bits matching: cosine is almost surely high.
	if p := Posterior(0.5, 32, 32); p < 0.95 {
		t.Errorf("P(s≥0.5 | 32/32) = %g", p)
	}
	// No bits matching: cosine is almost surely very negative.
	if p := Posterior(0.0, 0, 32); p > 0.05 {
		t.Errorf("P(s≥0 | 0/32) = %g", p)
	}
	// Thresholds ≤ -1 are certain.
	if p := Posterior(-1, 16, 32); math.Abs(p-1) > 1e-9 {
		t.Errorf("P(s≥-1) = %g", p)
	}
}

func TestMinMatchesMonotoneInThreshold(t *testing.T) {
	prev := 0
	for _, threshold := range []float64{0.0, 0.2, 0.4, 0.6, 0.8, 0.95} {
		m := MinMatches(threshold, 32, 0.03)
		if m < prev {
			t.Fatalf("MinMatches not monotone: t=%g gives %d < %d", threshold, m, prev)
		}
		prev = m
	}
}

func TestTableMatchesDirectComputation(t *testing.T) {
	tb := NewTable(32, 0.03)
	for _, threshold := range []float64{0.01, 0.25, 0.5, 0.77, 0.99} {
		got := tb.MinMatches(threshold)
		// The table floors the threshold to the grid, so it may only be
		// *less* demanding than the exact value (conservative).
		exact := MinMatches(threshold, 32, 0.03)
		if got > exact {
			t.Errorf("t=%g: table requires %d matches, exact %d (table must be ≤)", threshold, got, exact)
		}
		floor := MinMatches(math.Floor(threshold*100)/100, 32, 0.03)
		if got != floor {
			t.Errorf("t=%g: table %d, floored exact %d", threshold, got, floor)
		}
	}
	if tb.MinMatches(-0.5) != 0 {
		t.Error("negative threshold should require 0 matches")
	}
	if tb.MinMatches(1.5) != 33 {
		t.Error("threshold > 1 should be unsatisfiable")
	}
}

func TestMatchesMasksHighBits(t *testing.T) {
	// With bits=8, differences above bit 7 must not count.
	a := uint64(0x00)
	b := uint64(0xFF00) // differs only in bits 8–15
	if m := Matches(a, b, 8); m != 8 {
		t.Errorf("Matches=%d, want 8", m)
	}
	if m := Matches(a, b, 16); m != 8 {
		t.Errorf("Matches=%d, want 8 (8 of 16 agree)", m)
	}
}

func TestHasherPanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bits=65")
		}
	}()
	NewHasher(4, 65, rand.New(rand.NewSource(1)))
}
