// Package lsh implements random-hyperplane locality-sensitive hashing and
// the BayesLSH-Lite candidate-pruning rule (Satuluri & Parthasarathy, VLDB
// 2012) used by the paper's LEMP-BLSH bucket algorithm (§5, §6.3).
//
// A signature is b sign bits of projections onto random hyperplanes. Two
// unit vectors with cosine similarity s agree on each bit with probability
// ρ(s) = 1 − arccos(s)/π. BayesLSH-Lite inverts this: given m matching bits
// out of b, it computes the posterior probability that s ≥ t under a
// uniform prior and prunes the candidate when that probability falls below
// a small ε (0.03 in the paper). Because the decision depends only on
// (b, t, ε), the minimum acceptable match count can be precomputed, which
// is what MinMatches tabulates.
package lsh

import (
	"math"
	"math/rand"
	"sync"

	"lemp/internal/vecmath"
)

// Hasher projects r-dimensional vectors onto `bits` random hyperplanes and
// packs the signs into a uint64 signature (bits ≤ 64).
type Hasher struct {
	bits   int
	planes [][]float64 // bits hyperplane normals of dimension r
}

// NewHasher draws `bits` Gaussian hyperplanes of dimension r from rng.
func NewHasher(r, bits int, rng *rand.Rand) *Hasher {
	if bits <= 0 || bits > 64 {
		panic("lsh: bits must be in 1..64")
	}
	h := &Hasher{bits: bits, planes: make([][]float64, bits)}
	for i := range h.planes {
		plane := make([]float64, r)
		for j := range plane {
			plane[j] = rng.NormFloat64()
		}
		h.planes[i] = plane
	}
	return h
}

// Bits returns the signature length.
func (h *Hasher) Bits() int { return h.bits }

// Signature returns the packed sign bits of v's projections.
func (h *Hasher) Signature(v []float64) uint64 {
	var sig uint64
	for i, plane := range h.planes {
		if vecmath.Dot(plane, v) >= 0 {
			sig |= 1 << uint(i)
		}
	}
	return sig
}

// Matches returns the number of agreeing bits between two signatures built
// by the same b-bit hasher.
func Matches(a, b uint64, bits int) int {
	mask := ^uint64(0)
	if bits < 64 {
		mask = (1 << uint(bits)) - 1
	}
	return bits - popcount((a^b)&mask)
}

func popcount(x uint64) int {
	// math/bits is stdlib, but keeping this dependency-free two-liner
	// makes the package self-contained for property tests.
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// MatchProbability returns ρ(s) = 1 − arccos(s)/π, the per-bit agreement
// probability of two unit vectors with cosine similarity s.
func MatchProbability(s float64) float64 {
	return 1 - math.Acos(vecmath.Clamp(s, -1, 1))/math.Pi
}

// Posterior computes P(s ≥ t | m of b bits match) under a uniform prior on
// s ∈ [-1, 1], by numeric integration of the binomial likelihood
// ρ(s)^m (1−ρ(s))^(b−m). The binomial coefficient cancels.
func Posterior(t float64, m, b int) float64 {
	const steps = 2000
	var num, den float64
	for i := 0; i <= steps; i++ {
		s := -1 + 2*float64(i)/steps
		rho := MatchProbability(s)
		// Work in logs to survive b up to 64 without underflow of the
		// mid-range masses.
		var logL float64
		switch {
		case rho == 0:
			if m > 0 {
				continue
			}
		case rho == 1:
			if m < b {
				continue
			}
		default:
			logL = float64(m)*math.Log(rho) + float64(b-m)*math.Log(1-rho)
		}
		w := math.Exp(logL)
		den += w
		if s >= t {
			num += w
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// MinMatches returns the smallest match count m such that
// P(s ≥ t | m of bits match) ≥ eps; candidates with fewer matches are
// pruned (they pass the threshold with probability below ε). It returns
// bits+1 when even a perfect match is insufficient. The posterior is
// monotone in m, so binary search applies.
func MinMatches(t float64, bits int, eps float64) int {
	lo, hi := 0, bits+1
	for lo < hi {
		mid := (lo + hi) / 2
		if Posterior(t, mid, bits) >= eps {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Table precomputes MinMatches on a grid of thresholds so per-query lookups
// are O(1). Thresholds are rounded *down* to the grid, which can only relax
// the pruning (never increases the false-negative rate beyond ε).
type Table struct {
	bits int
	eps  float64
	min  []int // min[i] = MinMatches(i/gridSteps, bits, eps)
}

const gridSteps = 100

// tableCache shares tabulations process-wide: the table depends only on
// (bits, ε), and the posterior integrations behind it cost tens of
// milliseconds — BayesLSH-Lite precomputes them once, so do we.
var tableCache sync.Map // tableKey -> *Table

type tableKey struct {
	bits int
	eps  float64
}

// NewTable tabulates the pruning rule for a signature length and ε.
// Tables are immutable and cached per (bits, ε).
func NewTable(bits int, eps float64) *Table {
	key := tableKey{bits: bits, eps: eps}
	if cached, ok := tableCache.Load(key); ok {
		return cached.(*Table)
	}
	tb := &Table{bits: bits, eps: eps, min: make([]int, gridSteps+1)}
	for i := 0; i <= gridSteps; i++ {
		tb.min[i] = MinMatches(float64(i)/gridSteps, bits, eps)
	}
	actual, _ := tableCache.LoadOrStore(key, tb)
	return actual.(*Table)
}

// MinMatches returns the tabulated minimum match count for threshold t.
// Thresholds ≤ 0 require no matches (nothing can be pruned); thresholds > 1
// are unsatisfiable.
func (tb *Table) MinMatches(t float64) int {
	if t <= 0 {
		return 0
	}
	if t > 1 {
		return tb.bits + 1
	}
	return tb.min[int(t*gridSteps)] // floor: conservative
}
