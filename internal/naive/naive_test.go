package naive

import (
	"math"
	"sort"
	"testing"

	"lemp/internal/matrix"
	"lemp/internal/retrieval"
)

func TestAboveThetaSmall(t *testing.T) {
	// The worked example from the paper's Fig. 1: entries of QᵀP > 3 are
	// known.
	q, _ := matrix.FromVectors([][]float64{
		{3.2, -0.4}, {3.1, -0.2}, {0, 1.8}, {-0.4, 1.9},
	})
	p, _ := matrix.FromVectors([][]float64{
		{1.6, 0.6}, {1.3, 0.8}, {0.7, 2.7}, {1, 2.8}, {0.4, 2.2},
	})
	var got []retrieval.Entry
	st := AboveTheta(q, p, 3.0, retrieval.Collect(&got))
	// Fig. 1b bold entries: (Adam,DieHard)=4.9 (Adam,Taken)=3.8
	// (Bob,DieHard)=4.8 (Bob,Taken)=3.9 (Charlie,Twilight)=4.9
	// (Charlie,Amelie)=5.0 (Charlie,Titanic)=4.0 (Dennis,Twilight)=4.9
	// (Dennis,Amelie)=4.9 (Dennis,Titanic)=4.0.
	if len(got) != 10 {
		t.Fatalf("got %d entries, want 10: %v", len(got), got)
	}
	if st.Candidates != int64(q.N()*p.N()) {
		t.Errorf("candidates %d, want m·n=%d", st.Candidates, q.N()*p.N())
	}
	for _, e := range got {
		if want := q.Product(p, e.Query, e.Probe); math.Abs(want-e.Value) > 1e-12 {
			t.Errorf("entry (%d,%d): %g vs %g", e.Query, e.Probe, e.Value, want)
		}
		if e.Value < 3.0 {
			t.Errorf("entry below threshold: %+v", e)
		}
	}
}

func TestRowTopKOrderingAndBounds(t *testing.T) {
	q, _ := matrix.FromVectors([][]float64{{1, 0}, {0, 1}})
	p, _ := matrix.FromVectors([][]float64{{5, 0}, {4, 0}, {3, 0}, {0, 9}})
	top, st := RowTopK(q, p, 2)
	if len(top) != 2 {
		t.Fatalf("%d rows", len(top))
	}
	if top[0][0].Probe != 0 || top[0][1].Probe != 1 {
		t.Errorf("row 0: %+v", top[0])
	}
	if top[1][0].Probe != 3 {
		t.Errorf("row 1: %+v", top[1])
	}
	if !sort.SliceIsSorted(top[0], func(a, b int) bool { return top[0][a].Value > top[0][b].Value }) {
		t.Error("row not sorted by decreasing value")
	}
	if st.Results != 4 {
		t.Errorf("results %d", st.Results)
	}
}

func TestRowTopKWithKLargerThanN(t *testing.T) {
	q, _ := matrix.FromVectors([][]float64{{1, 1}})
	p, _ := matrix.FromVectors([][]float64{{1, 0}, {0, 1}})
	top, _ := RowTopK(q, p, 10)
	if len(top[0]) != 2 {
		t.Fatalf("row has %d entries, want 2", len(top[0]))
	}
}

func TestEmptyInputs(t *testing.T) {
	q := matrix.New(3, 0)
	p := matrix.New(3, 4)
	var got []retrieval.Entry
	st := AboveTheta(q, p, 1, retrieval.Collect(&got))
	if len(got) != 0 || st.Queries != 0 {
		t.Error("empty query matrix misbehaves")
	}
	top, _ := RowTopK(matrix.New(3, 2), matrix.New(3, 0), 5)
	for _, row := range top {
		if len(row) != 0 {
			t.Error("empty probe matrix yields entries")
		}
	}
}
