// Package naive implements the paper's Naive baseline (§2): compute every
// inner product of the full product matrix QᵀP and select the large entries
// directly. Time complexity O(mnr); it exists as the correctness oracle and
// as the baseline every experiment is normalized against.
package naive

import (
	"lemp/internal/matrix"
	"lemp/internal/retrieval"
	"lemp/internal/topk"
	"lemp/internal/vecmath"
)

// Stats reports the work done by a naive run. For Naive the candidate count
// is always m·n: every probe vector is "verified" for every query.
type Stats struct {
	Queries    int
	Candidates int64 // inner products computed
	Results    int64
}

// AboveTheta emits every entry of QᵀP with value ≥ theta.
func AboveTheta(q, p *matrix.Matrix, theta float64, emit retrieval.Sink) Stats {
	st := Stats{Queries: q.N()}
	for i := 0; i < q.N(); i++ {
		qi := q.Vec(i)
		for j := 0; j < p.N(); j++ {
			st.Candidates++
			v := vecmath.Dot(qi, p.Vec(j))
			if v >= theta {
				st.Results++
				emit(retrieval.Entry{Query: i, Probe: j, Value: v})
			}
		}
	}
	return st
}

// RowTopK returns, for each query vector, the k probe vectors with the
// largest inner products (fewer if P has fewer than k vectors), ordered by
// decreasing value. Ties are broken arbitrarily.
func RowTopK(q, p *matrix.Matrix, k int) (retrieval.TopK, Stats) {
	st := Stats{Queries: q.N()}
	out := make(retrieval.TopK, q.N())
	if p.N() == 0 {
		return out, st
	}
	kk := k
	if kk > p.N() {
		kk = p.N()
	}
	heap := topk.New(kk)
	for i := 0; i < q.N(); i++ {
		qi := q.Vec(i)
		heap.Reset()
		for j := 0; j < p.N(); j++ {
			st.Candidates++
			heap.Push(j, vecmath.Dot(qi, p.Vec(j)))
		}
		items := heap.Items()
		row := make([]retrieval.Entry, len(items))
		for t, it := range items {
			row[t] = retrieval.Entry{Query: i, Probe: it.ID, Value: it.Value}
		}
		st.Results += int64(len(row))
		out[i] = row
	}
	return out, st
}
