package vecmath

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel micro-benchmarks: one query against a panel of probe directions,
// scalar (one Dot per row) vs blocked (DotBatch), across the dimensionality
// regimes the library targets. The panel is sized to stay cache-resident,
// matching LEMP's bucket design, so the comparison isolates instruction-level
// parallelism rather than memory bandwidth.

const benchRows = 512

func benchPanel(r int) (q, panel []float64, out []float64) {
	rng := rand.New(rand.NewSource(int64(r)))
	q = make([]float64, r)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	panel = make([]float64, benchRows*r)
	for i := range panel {
		panel[i] = rng.NormFloat64()
	}
	return q, panel, make([]float64, benchRows)
}

func BenchmarkDotScalarPanel(b *testing.B) {
	for _, r := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			q, panel, out := benchPanel(r)
			b.SetBytes(int64(benchRows * r * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < benchRows; j++ {
					out[j] = Dot(q, panel[j*r:(j+1)*r])
				}
			}
		})
	}
}

func BenchmarkDotBatchPanel(b *testing.B) {
	for _, r := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			q, panel, out := benchPanel(r)
			b.SetBytes(int64(benchRows * r * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				DotBatch(q, panel, out)
			}
		})
	}
}

func BenchmarkDotNorm2(b *testing.B) {
	for _, r := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			q, panel, _ := benchPanel(r)
			b.SetBytes(int64(2 * r * 8))
			var sink float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, n := DotNorm2(q, panel[:r])
				sink += d + n
			}
			_ = sink
		})
	}
}
