// Package vecmath provides the dense vector primitives used throughout the
// LEMP library: inner products, Euclidean norms and normalization.
//
// Vectors are plain []float64 slices. All functions are allocation-free
// unless documented otherwise, because they sit on the hot path of every
// retrieval algorithm.
package vecmath

import "math"

// Dot returns the inner product of a and b. The slices must have equal
// length; Dot panics otherwise (a programming error, not an input error).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: Dot on vectors of unequal length")
	}
	var s float64
	// Unrolled by four: measurably faster than the naive loop for the
	// r in [10,500] regime this library targets, and exact bit-for-bit
	// accumulation order is not part of the API contract.
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s += a[i]*b[i] + a[i+1]*b[i+1] + a[i+2]*b[i+2] + a[i+3]*b[i+3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the squared Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// Norm returns the Euclidean norm ‖v‖.
func Norm(v []float64) float64 {
	return math.Sqrt(Norm2(v))
}

// Normalize writes v/‖v‖ into dst and returns ‖v‖. If v is the zero vector,
// dst is zeroed and 0 is returned; callers treat zero vectors as having no
// direction (their inner product with anything is 0). dst and v may alias.
func Normalize(dst, v []float64) float64 {
	n := Norm(v)
	if n == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0
	}
	inv := 1 / n
	for i, x := range v {
		dst[i] = x * inv
	}
	return n
}

// Scale writes s*v into dst. dst and v may alias.
func Scale(dst, v []float64, s float64) {
	for i, x := range v {
		dst[i] = x * s
	}
}

// Cos returns the cosine similarity of a and b, in [-1,1]. Zero vectors have
// cosine 0 with everything. The result is clamped to [-1,1] to guard against
// floating-point drift. The dot product and ‖b‖² come out of one fused
// DotNorm2 pass, so Cos reads b once and a twice instead of each twice.
func Cos(a, b []float64) float64 {
	dot, nb2 := DotNorm2(a, b)
	na2 := Norm2(a)
	if na2 == 0 || nb2 == 0 {
		return 0
	}
	c := dot / (math.Sqrt(na2) * math.Sqrt(nb2))
	return Clamp(c, -1, 1)
}

// Clamp returns x limited to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// SqDist returns the squared Euclidean distance ‖a-b‖².
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: SqDist on vectors of unequal length")
	}
	var s float64
	for i, x := range a {
		d := x - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance ‖a-b‖.
func Dist(a, b []float64) float64 {
	return math.Sqrt(SqDist(a, b))
}
