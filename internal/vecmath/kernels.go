package vecmath

// Blocked verification kernels. LEMP's verification phase — one exact inner
// product per candidate that survived bucket-level pruning — is a dense
// panel-times-vector product in disguise: the probe directions of one bucket
// are contiguous rows, and a candidate set is a (possibly strided) selection
// of them. Evaluating several rows per pass with one independent accumulator
// chain per row keeps the floating-point units busy while the single shared
// query vector stays in registers, the same panel-at-a-time structure blocked
// sparse/dense multiplication kernels use.
//
// Bit-exactness contract: every kernel accumulates each row in exactly the
// order Dot uses (unrolled by four within one row, sequential tail), so for
// any row the blocked result is bit-identical to calling Dot on that row.
// Only the *interleaving across rows* changes, which no result depends on.
// Exactness-asserted paths (the differential mutation harness) therefore see
// byte-identical output from the blocked and scalar verifiers.

// DotBatch computes the inner product of q against every row of a contiguous
// row-panel: out[i] = Dot(q, panel[i*r:(i+1)*r]) for r = len(q). The panel
// must hold exactly len(out) rows; DotBatch panics otherwise (a programming
// error, not an input error). Each out[i] is bit-identical to the
// corresponding Dot call. A zero-dimension q yields all-zero outputs.
func DotBatch(q, panel, out []float64) {
	r := len(q)
	if len(panel) != len(out)*r {
		panic("vecmath: DotBatch panel size does not match len(out) rows")
	}
	if r == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	n := len(out)
	i := 0
	for ; i+8 <= n; i += 8 {
		p := panel[i*r : (i+8)*r]
		Dot8(q,
			p[0*r:1*r], p[1*r:2*r], p[2*r:3*r], p[3*r:4*r],
			p[4*r:5*r], p[5*r:6*r], p[6*r:7*r], p[7*r:8*r],
			(*[8]float64)(out[i:i+8]))
	}
	for ; i+4 <= n; i += 4 {
		p := panel[i*r : (i+4)*r]
		Dot4(q, p[0*r:1*r], p[1*r:2*r], p[2*r:3*r], p[3*r:4*r],
			(*[4]float64)(out[i:i+4]))
	}
	for ; i < n; i++ {
		out[i] = Dot(q, panel[i*r:(i+1)*r])
	}
}

// Dot4 computes four inner products of q against four rows at once, for
// strided candidate sets whose rows are not adjacent in memory: out[j] =
// Dot(q, pj), bit-identical to four scalar Dot calls. All rows must have
// len(q) elements; Dot4 panics otherwise.
func Dot4(q, p0, p1, p2, p3 []float64, out *[4]float64) {
	r := len(q)
	if len(p0) != r || len(p1) != r || len(p2) != r || len(p3) != r {
		panic("vecmath: Dot4 on rows of unequal length")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= r; i += 4 {
		qq := q[i : i+4 : i+4]
		q0, q1, q2, q3 := qq[0], qq[1], qq[2], qq[3]
		s0 += q0*p0[i] + q1*p0[i+1] + q2*p0[i+2] + q3*p0[i+3]
		s1 += q0*p1[i] + q1*p1[i+1] + q2*p1[i+2] + q3*p1[i+3]
		s2 += q0*p2[i] + q1*p2[i+1] + q2*p2[i+2] + q3*p2[i+3]
		s3 += q0*p3[i] + q1*p3[i+1] + q2*p3[i+2] + q3*p3[i+3]
	}
	for ; i < r; i++ {
		x := q[i]
		s0 += x * p0[i]
		s1 += x * p1[i]
		s2 += x * p2[i]
		s3 += x * p3[i]
	}
	out[0], out[1], out[2], out[3] = s0, s1, s2, s3
}

// Dot8 is Dot4 widened to eight rows: out[j] = Dot(q, pj), bit-identical to
// eight scalar Dot calls. Eight accumulator chains hide more floating-point
// latency than four on wide cores; DotBatch and the blocked verifier prefer
// it and fall back to Dot4/Dot for the tail.
func Dot8(q, p0, p1, p2, p3, p4, p5, p6, p7 []float64, out *[8]float64) {
	r := len(q)
	if len(p0) != r || len(p1) != r || len(p2) != r || len(p3) != r ||
		len(p4) != r || len(p5) != r || len(p6) != r || len(p7) != r {
		panic("vecmath: Dot8 on rows of unequal length")
	}
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	i := 0
	for ; i+4 <= r; i += 4 {
		qq := q[i : i+4 : i+4]
		q0, q1, q2, q3 := qq[0], qq[1], qq[2], qq[3]
		s0 += q0*p0[i] + q1*p0[i+1] + q2*p0[i+2] + q3*p0[i+3]
		s1 += q0*p1[i] + q1*p1[i+1] + q2*p1[i+2] + q3*p1[i+3]
		s2 += q0*p2[i] + q1*p2[i+1] + q2*p2[i+2] + q3*p2[i+3]
		s3 += q0*p3[i] + q1*p3[i+1] + q2*p3[i+2] + q3*p3[i+3]
		s4 += q0*p4[i] + q1*p4[i+1] + q2*p4[i+2] + q3*p4[i+3]
		s5 += q0*p5[i] + q1*p5[i+1] + q2*p5[i+2] + q3*p5[i+3]
		s6 += q0*p6[i] + q1*p6[i+1] + q2*p6[i+2] + q3*p6[i+3]
		s7 += q0*p7[i] + q1*p7[i+1] + q2*p7[i+2] + q3*p7[i+3]
	}
	for ; i < r; i++ {
		x := q[i]
		s0 += x * p0[i]
		s1 += x * p1[i]
		s2 += x * p2[i]
		s3 += x * p3[i]
		s4 += x * p4[i]
		s5 += x * p5[i]
		s6 += x * p6[i]
		s7 += x * p7[i]
	}
	out[0], out[1], out[2], out[3] = s0, s1, s2, s3
	out[4], out[5], out[6], out[7] = s4, s5, s6, s7
}

// DotNorm2 fuses the two accumulations INCR-style bounds need — the inner
// product a·b and the squared norm ‖b‖² — into one pass over b, halving the
// memory traffic of computing them separately. The slices must have equal
// length; DotNorm2 panics otherwise. The dot accumulator follows Dot's
// order exactly (bit-identical to Dot(a, b)); the norm accumulator uses the
// same unrolled grouping, which may differ from Norm2's sequential order in
// the last bits — callers needing bit-compatibility with Norm2 must keep
// calling Norm2.
func DotNorm2(a, b []float64) (dot, norm2 float64) {
	if len(a) != len(b) {
		panic("vecmath: DotNorm2 on vectors of unequal length")
	}
	var s, n float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		b0, b1, b2, b3 := b[i], b[i+1], b[i+2], b[i+3]
		s += a[i]*b0 + a[i+1]*b1 + a[i+2]*b2 + a[i+3]*b3
		n += b0*b0 + b1*b1 + b2*b2 + b3*b3
	}
	for ; i < len(a); i++ {
		x := b[i]
		s += a[i] * x
		n += x * x
	}
	return s, n
}
