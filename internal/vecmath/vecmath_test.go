package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDotBasic(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{nil, nil, 0},
		{[]float64{2}, []float64{3}, 6},
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{1, 2, 3, 4, 5}, []float64{5, 4, 3, 2, 1}, 35},
		{[]float64{1, -1, 1, -1}, []float64{1, 1, 1, 1}, 0},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); got != c.want {
			t.Errorf("Dot(%v,%v)=%g want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestDotPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched lengths")
		}
	}()
	Dot([]float64{1, 2}, []float64{1})
}

func TestDotMatchesNaiveLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		a := make([]float64, n)
		b := make([]float64, n)
		var want float64
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
			want += a[i] * b[i]
		}
		if got := Dot(a, b); !almostEqual(got, want, 1e-12) {
			t.Fatalf("n=%d: Dot=%g naive=%g", n, got, want)
		}
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	dst := make([]float64, 2)
	if n := Normalize(dst, v); n != 5 {
		t.Fatalf("norm %g, want 5", n)
	}
	if !almostEqual(dst[0], 0.6, 1e-12) || !almostEqual(dst[1], 0.8, 1e-12) {
		t.Fatalf("normalized %v", dst)
	}
	// Aliasing.
	if n := Normalize(v, v); n != 5 {
		t.Fatalf("aliased norm %g", n)
	}
	if !almostEqual(v[0], 0.6, 1e-12) || !almostEqual(v[1], 0.8, 1e-12) {
		t.Fatalf("aliased normalize %v", v)
	}
	// Zero vector.
	z := []float64{0, 0, 0}
	if n := Normalize(z, z); n != 0 {
		t.Fatalf("zero-vector norm %g", n)
	}
	for _, x := range z {
		if x != 0 {
			t.Fatalf("zero vector mutated: %v", z)
		}
	}
}

func TestCosClampedAndZeroSafe(t *testing.T) {
	if c := Cos([]float64{1, 0}, []float64{0, 0}); c != 0 {
		t.Errorf("cos with zero vector = %g", c)
	}
	if c := Cos([]float64{1, 2, 3}, []float64{2, 4, 6}); !almostEqual(c, 1, 1e-12) {
		t.Errorf("cos of parallel vectors = %g", c)
	}
	if c := Cos([]float64{1, 0}, []float64{-1, 0}); !almostEqual(c, -1, 1e-12) {
		t.Errorf("cos of antiparallel vectors = %g", c)
	}
}

// Property: Cauchy–Schwarz — |a·b| ≤ ‖a‖‖b‖.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		for _, x := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // quick can generate extreme values; skip
			}
		}
		lhs := math.Abs(Dot(a, b))
		rhs := Norm(a) * Norm(b)
		return lhs <= rhs*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: normalization produces unit vectors (or zero).
func TestNormalizeUnitProperty(t *testing.T) {
	f := func(v []float64) bool {
		for _, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		dst := make([]float64, len(v))
		n := Normalize(dst, v)
		if n == 0 {
			return Norm(dst) == 0
		}
		return almostEqual(Norm(dst), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the length/direction decomposition of Eq. (1):
// a·b = ‖a‖‖b‖cos(a,b).
func TestInnerProductDecompositionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 3
			b[i] = rng.NormFloat64() * 3
		}
		lhs := Dot(a, b)
		rhs := Norm(a) * Norm(b) * Cos(a, b)
		if !almostEqual(lhs, rhs, 1e-9) {
			t.Fatalf("decomposition: %g vs %g", lhs, rhs)
		}
	}
}

func TestDistancesConsistent(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 6, 3}
	if d := SqDist(a, b); d != 25 {
		t.Errorf("SqDist=%g want 25", d)
	}
	if d := Dist(a, b); d != 5 {
		t.Errorf("Dist=%g want 5", d)
	}
	if d := Dist(a, a); d != 0 {
		t.Errorf("Dist(a,a)=%g", d)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestScale(t *testing.T) {
	v := []float64{1, -2, 3}
	dst := make([]float64, 3)
	Scale(dst, v, -2)
	if dst[0] != -2 || dst[1] != 4 || dst[2] != -6 {
		t.Errorf("Scale result %v", dst)
	}
	Scale(v, v, 0.5) // aliasing
	if v[0] != 0.5 {
		t.Errorf("aliased Scale result %v", v)
	}
}
