package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDot is the straight-line reference the blocked kernels are
// property-tested against: sequential accumulation, no unrolling.
func naiveDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func naiveNorm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// genVec draws a Gaussian vector; about one call in eight returns the zero
// vector so the degenerate case is always in the property mix.
func genVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	if rng.Intn(8) == 0 {
		return v
	}
	for i := range v {
		v[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64())
	}
	return v
}

// kernelLengths are the dimensions the kernel tests sweep: zero, the odd
// lengths straddling the unroll width (4), and the row-group widths (4, 8)
// with their neighbors, plus larger sizes that exercise several full
// iterations with ragged tails.
var kernelLengths = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 50, 64, 65}

// TestDotBatchBitIdenticalToDot is the exactness contract of the blocked
// verifier: for every row, DotBatch must produce the same bits as the seed
// Dot implementation — the differential mutation harness asserts
// byte-identical retrieval results, so any last-ulp drift here would surface
// as a correctness failure there.
func TestDotBatchBitIdenticalToDot(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, r := range kernelLengths {
		for _, rows := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 17, 33} {
			q := genVec(rng, r)
			panel := make([]float64, rows*r)
			for i := range panel {
				panel[i] = rng.NormFloat64()
			}
			out := make([]float64, rows)
			DotBatch(q, panel, out)
			for i := 0; i < rows; i++ {
				want := Dot(q, panel[i*r:(i+1)*r])
				if math.Float64bits(out[i]) != math.Float64bits(want) {
					t.Fatalf("r=%d rows=%d row %d: DotBatch %x, Dot %x",
						r, rows, i, math.Float64bits(out[i]), math.Float64bits(want))
				}
			}
		}
	}
}

func TestDot4Dot8BitIdenticalToDot(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, r := range kernelLengths {
		q := genVec(rng, r)
		rows := make([][]float64, 8)
		for i := range rows {
			rows[i] = genVec(rng, r)
		}
		var out4 [4]float64
		Dot4(q, rows[0], rows[1], rows[2], rows[3], &out4)
		var out8 [8]float64
		Dot8(q, rows[0], rows[1], rows[2], rows[3], rows[4], rows[5], rows[6], rows[7], &out8)
		for i := 0; i < 8; i++ {
			want := math.Float64bits(Dot(q, rows[i]))
			if i < 4 && math.Float64bits(out4[i]) != want {
				t.Fatalf("r=%d Dot4 row %d: %x, Dot %x", r, i, math.Float64bits(out4[i]), want)
			}
			if math.Float64bits(out8[i]) != want {
				t.Fatalf("r=%d Dot8 row %d: %x, Dot %x", r, i, math.Float64bits(out8[i]), want)
			}
		}
	}
}

// TestKernelsMatchNaiveReference checks tolerance-bounded agreement with the
// sequential reference across the length sweep (accumulation order differs,
// so equality is approximate by design).
func TestKernelsMatchNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, r := range kernelLengths {
		for trial := 0; trial < 20; trial++ {
			q := genVec(rng, r)
			rows := 1 + rng.Intn(12)
			panel := make([]float64, rows*r)
			for i := range panel {
				panel[i] = rng.NormFloat64()
			}
			out := make([]float64, rows)
			DotBatch(q, panel, out)
			for i := 0; i < rows; i++ {
				want := naiveDot(q, panel[i*r:(i+1)*r])
				if !almostEqual(out[i], want, 1e-9) {
					t.Fatalf("r=%d row %d: DotBatch %g, naive %g", r, i, out[i], want)
				}
			}
			b := genVec(rng, r)
			dot, n2 := DotNorm2(q, b)
			if !almostEqual(dot, naiveDot(q, b), 1e-9) {
				t.Fatalf("r=%d: DotNorm2 dot %g, naive %g", r, dot, naiveDot(q, b))
			}
			if !almostEqual(n2, naiveNorm2(b), 1e-9) {
				t.Fatalf("r=%d: DotNorm2 norm2 %g, naive %g", r, n2, naiveNorm2(b))
			}
		}
	}
}

// TestDotNorm2DotBitIdentical: the dot half of the fused kernel keeps Dot's
// exact accumulation order.
func TestDotNorm2DotBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, r := range kernelLengths {
		a, b := genVec(rng, r), genVec(rng, r)
		dot, _ := DotNorm2(a, b)
		if math.Float64bits(dot) != math.Float64bits(Dot(a, b)) {
			t.Fatalf("r=%d: DotNorm2 dot %x, Dot %x", r, math.Float64bits(dot), math.Float64bits(Dot(a, b)))
		}
	}
}

// TestKernelQuickProperties drives testing/quick over random row sets:
// blocked results agree with the reference within tolerance, zero vectors
// yield exact zeros, and non-finite inputs produce the same non-finite
// classification as the reference (NaN where the reference is NaN).
func TestKernelQuickProperties(t *testing.T) {
	f := func(q []float64, rowSeed int64, nRows uint8) bool {
		r := len(q)
		for _, x := range q {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // extreme magnitudes overflow any order; skip
			}
		}
		rows := int(nRows%13) + 1
		rng := rand.New(rand.NewSource(rowSeed))
		panel := make([]float64, rows*r)
		for i := range panel {
			panel[i] = rng.NormFloat64()
		}
		out := make([]float64, rows)
		DotBatch(q, panel, out)
		for i := 0; i < rows; i++ {
			want := naiveDot(q, panel[i*r:(i+1)*r])
			if !almostEqual(out[i], want, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKernelsZeroVector(t *testing.T) {
	q := make([]float64, 10)
	panel := make([]float64, 5*10)
	for i := range panel {
		panel[i] = float64(i) - 20
	}
	out := make([]float64, 5)
	DotBatch(q, panel, out)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("zero query row %d: %g", i, v)
		}
	}
	dot, n2 := DotNorm2(panel[:10], q)
	if dot != 0 || n2 != 0 {
		t.Fatalf("DotNorm2 against zero vector: %g, %g", dot, n2)
	}
}

// TestKernelsNonFiniteBoundary: NaN and Inf coordinates must flow through
// identically to the seed Dot (no kernel may silently skip or mask them).
// Retrieval rejects non-finite inputs at its boundary; the kernels still
// must not turn garbage into plausible numbers.
func TestKernelsNonFiniteBoundary(t *testing.T) {
	q := []float64{1, math.NaN(), 2, 3, 4}
	row := []float64{5, 6, 7, 8, 9}
	var out [4]float64
	Dot4(q, row, row, row, row, &out)
	for i, v := range out {
		if !math.IsNaN(v) {
			t.Fatalf("Dot4 row %d with NaN query: %g", i, v)
		}
	}
	qInf := []float64{1, math.Inf(1), 2, 3, 4}
	out2 := make([]float64, 2)
	DotBatch(qInf, append(append([]float64{}, row...), row...), out2)
	for i, v := range out2 {
		want := Dot(qInf, row)
		if math.Float64bits(v) != math.Float64bits(want) {
			t.Fatalf("DotBatch row %d with Inf query: %g, Dot %g", i, v, want)
		}
	}
	dot, n2 := DotNorm2(q, row)
	if !math.IsNaN(dot) {
		t.Fatalf("DotNorm2 dot with NaN input: %g", dot)
	}
	if n2 != naiveNorm2(row) {
		t.Fatalf("DotNorm2 norm2 polluted by the other vector's NaN: %g", n2)
	}
}

func TestKernelsPanicOnShapeMismatch(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"DotBatch", func() { DotBatch(make([]float64, 3), make([]float64, 7), make([]float64, 2)) }},
		{"Dot4", func() {
			var out [4]float64
			Dot4(make([]float64, 3), make([]float64, 3), make([]float64, 2), make([]float64, 3), make([]float64, 3), &out)
		}},
		{"Dot8", func() {
			var out [8]float64
			p := make([]float64, 3)
			Dot8(make([]float64, 3), p, p, p, p, p, p, p, make([]float64, 4), &out)
		}},
		{"DotNorm2", func() { DotNorm2(make([]float64, 3), make([]float64, 4)) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic for mismatched shapes", c.name)
				}
			}()
			c.fn()
		}()
	}
}
