package covertree

import (
	"math"
	"sort"
	"time"

	"lemp/internal/matrix"
	"lemp/internal/retrieval"
	"lemp/internal/topk"
	"lemp/internal/vecmath"
)

// Dual-tree max-kernel search (Curtin & Ram 2014, the paper's D-Tree
// baseline). Queries are arranged in a second cover tree and processed in
// batches. For a query node Nq (point qc, radius λq) and probe node Np
// (point pc, radius λp), every pair q ∈ Nq, p ∈ Np satisfies
//
//	qᵀp = (qc+eq)ᵀ(pc+ep) ≤ qcᵀpc + λp‖qc‖ + λq‖pc‖ + λqλp,
//
// with ‖eq‖ ≤ λq and ‖ep‖ ≤ λp. The pair of subtrees is pruned when this
// bound cannot reach the threshold (Above-θ) or the smallest running
// top-k threshold among the queries below Nq (Row-Top-k) — the paper notes
// this group bound is looser than the single-tree bound, which is why
// D-Tree typically loses despite batching.

// Dual couples a query tree and a probe tree.
type Dual struct {
	Q, P     *Tree
	prepTime time.Duration
}

// NewDual builds cover trees over both matrices (the paper's D-Tree
// preprocessing, charged with both constructions in Table 2).
func NewDual(q, p *matrix.Matrix, base float64) *Dual {
	start := time.Now()
	d := &Dual{Q: Build(q, base), P: Build(p, base)}
	d.prepTime = time.Since(start)
	return d
}

// PrepTime returns the combined construction time of both trees.
func (d *Dual) PrepTime() time.Duration { return d.prepTime }

// pairBound returns the group upper bound for (nq, np) along with the
// kernel value of the two node points.
func (d *Dual) pairBound(nq, np *node) (bound, dot float64) {
	dot = vecmath.Dot(d.Q.points.Vec(int(nq.point)), d.P.points.Vec(int(np.point)))
	bound = dot + np.maxDist*d.Q.norms[nq.point] + nq.maxDist*d.P.norms[np.point] + nq.maxDist*np.maxDist
	return bound, dot
}

// splitSide decides which node a traversal step splits: the one with the
// larger radius (a leaf is never split).
func splitSide(nq, np *node) (splitQuery bool) {
	if nq.isLeaf() {
		return false
	}
	if np.isLeaf() {
		return true
	}
	return nq.maxDist > np.maxDist
}

// expand returns the traversal children of n: its real children plus a leaf
// carrying n's own point, so every point stays reachable exactly once.
func expand(n *node) []*node {
	out := make([]*node, 0, len(n.children)+1)
	out = append(out, n.selfChild())
	out = append(out, n.children...)
	return out
}

// pointsOf lists the point ids carried by a leaf node (its point plus
// duplicates).
func pointsOf(n *node) []int32 {
	if len(n.dupes) == 0 {
		return []int32{n.point}
	}
	return append([]int32{n.point}, n.dupes...)
}

// AboveTheta runs the dual-tree Above-θ search, emitting all entries of
// QᵀP ≥ theta.
func (d *Dual) AboveTheta(theta float64, emit retrieval.Sink) Stats {
	start := time.Now()
	st := Stats{Queries: d.Q.N(), PrepTime: d.prepTime}
	if d.Q.root == nil || d.P.root == nil {
		st.Time = time.Since(start)
		return st
	}
	// recurse is entered with the pair's bound and point kernel already
	// computed (counted by the caller), so each node pair costs exactly
	// one inner product.
	var recurse func(nq, np *node, bound, dot float64)
	recurse = func(nq, np *node, bound, dot float64) {
		if bound < theta {
			return
		}
		if nq.isLeaf() && np.isLeaf() {
			if dot >= theta {
				for _, qid := range pointsOf(nq) {
					for _, pid := range pointsOf(np) {
						st.Results++
						emit(retrieval.Entry{Query: int(qid), Probe: int(pid), Value: dot})
					}
				}
			}
			return
		}
		if splitQuery := splitSide(nq, np); splitQuery {
			for _, c := range expand(nq) {
				b, dt := d.pairBound(c, np)
				st.Candidates++
				recurse(c, np, b, dt)
			}
		} else {
			for _, c := range expand(np) {
				b, dt := d.pairBound(nq, c)
				st.Candidates++
				recurse(nq, c, b, dt)
			}
		}
	}
	b, dt := d.pairBound(d.Q.root, d.P.root)
	st.Candidates++
	recurse(d.Q.root, d.P.root, b, dt)
	st.Time = time.Since(start)
	return st
}

// RowTopK runs the dual-tree Row-Top-k search.
func (d *Dual) RowTopK(k int) (retrieval.TopK, Stats) {
	start := time.Now()
	st := Stats{Queries: d.Q.N(), PrepTime: d.prepTime}
	out := make(retrieval.TopK, d.Q.N())
	if d.Q.root == nil || d.P.root == nil || d.P.N() == 0 {
		st.Time = time.Since(start)
		return out, st
	}
	kk := k
	if kk > d.P.N() {
		kk = d.P.N()
	}
	heaps := make([]*topk.Heap, d.Q.N())
	for i := range heaps {
		heaps[i] = topk.New(kk)
	}
	thr := func(q int32) float64 {
		if v, ok := heaps[q].Threshold(); ok {
			return v
		}
		return math.Inf(-1)
	}
	d.resetBounds(d.Q.root)
	var recurse func(nq, np *node, bound, dot float64)
	recurse = func(nq, np *node, bound, dot float64) {
		// Refresh the query-group bound from (possibly stale, hence
		// conservative) child caches; thresholds only rise, so a
		// stale cache is a valid lower bound.
		nq.bound = d.refreshBound(nq, thr)
		if bound < nq.bound {
			return
		}
		if nq.isLeaf() && np.isLeaf() {
			for _, qid := range pointsOf(nq) {
				for _, pid := range pointsOf(np) {
					heaps[qid].Push(int(pid), dot)
				}
			}
			nq.bound = d.refreshBound(nq, thr)
			return
		}
		if splitQuery := splitSide(nq, np); splitQuery {
			for _, c := range expand(nq) {
				b, dt := d.pairBound(c, np)
				st.Candidates++
				recurse(c, np, b, dt)
			}
		} else {
			// Visit the most promising probe children first so the
			// per-query thresholds rise quickly.
			children := expand(np)
			type scored struct {
				b, dot float64
				n      *node
			}
			sc := make([]scored, len(children))
			for i, c := range children {
				b, dt := d.pairBound(nq, c)
				st.Candidates++
				sc[i] = scored{b: b, dot: dt, n: c}
			}
			sort.Slice(sc, func(i, j int) bool { return sc[i].b > sc[j].b })
			for _, s := range sc {
				recurse(nq, s.n, s.b, s.dot)
			}
		}
	}
	b, dt := d.pairBound(d.Q.root, d.P.root)
	st.Candidates++
	recurse(d.Q.root, d.P.root, b, dt)
	for i := range heaps {
		items := heaps[i].Items()
		row := make([]retrieval.Entry, len(items))
		for j, it := range items {
			row[j] = retrieval.Entry{Query: i, Probe: it.ID, Value: it.Value}
		}
		st.Results += int64(len(row))
		out[i] = row
	}
	st.Time = time.Since(start)
	return out, st
}

// refreshBound recomputes the minimum running threshold among queries under
// nq, reading child caches without recursion (stale child values are ≤ the
// true value, so the result is a valid lower bound).
func (d *Dual) refreshBound(nq *node, thr func(int32) float64) float64 {
	if nq.isLeaf() {
		b := thr(nq.point)
		for _, dup := range nq.dupes {
			if v := thr(dup); v < b {
				b = v
			}
		}
		return b
	}
	var b float64
	if nq.selfLeaf != nil {
		b = nq.selfLeaf.bound
	} else {
		b = math.Inf(-1) // own point not yet visited as a leaf
	}
	for _, c := range nq.children {
		if c.bound < b {
			b = c.bound
		}
	}
	return b
}

func (d *Dual) resetBounds(n *node) {
	n.bound = math.Inf(-1)
	if n.selfLeaf != nil {
		n.selfLeaf.bound = math.Inf(-1)
	}
	for _, c := range n.children {
		d.resetBounds(c)
	}
}
