package covertree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"lemp/internal/matrix"
	"lemp/internal/naive"
	"lemp/internal/retrieval"
	"lemp/internal/vecmath"
)

func genMatrix(rng *rand.Rand, n, r int, sigma float64) *matrix.Matrix {
	m := matrix.New(r, n)
	for i := 0; i < n; i++ {
		v := m.Vec(i)
		var norm2 float64
		for f := range v {
			v[f] = rng.NormFloat64()
			norm2 += v[f] * v[f]
		}
		scale := math.Exp(sigma * rng.NormFloat64())
		if norm2 > 0 {
			scale /= math.Sqrt(norm2)
		}
		for f := range v {
			v[f] *= scale
		}
	}
	return m
}

func TestValidateInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{0, 1, 2, 10, 300} {
		p := genMatrix(rng, n, 5, 0.8)
		tree := Build(p, DefaultBase)
		if err := tree.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tree.N() != n {
			t.Fatalf("N=%d want %d", tree.N(), n)
		}
	}
}

func TestDuplicatePointsAllRetrievable(t *testing.T) {
	vecs := [][]float64{{1, 2}, {1, 2}, {1, 2}, {3, 0}, {3, 0}}
	p, _ := matrix.FromVectors(vecs)
	tree := Build(p, DefaultBase)
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	q, _ := matrix.FromVectors([][]float64{{1, 1}})
	var got []retrieval.Entry
	tree.AboveTheta(q, 2.5, retrieval.Collect(&got))
	if len(got) != 5 { // all five probes have product ≥ 2.5 (3 and 3)
		t.Fatalf("got %d entries, want 5: %v", len(got), got)
	}
}

func TestSingleTreeAboveThetaMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 6; trial++ {
		q := genMatrix(rng, 25, 6, 0.9)
		p := genMatrix(rng, 200, 6, 0.9)
		theta := pickTheta(q, p, 50+trial*30)
		if theta <= 0 {
			continue
		}
		var want, got []retrieval.Entry
		naive.AboveTheta(q, p, theta, retrieval.Collect(&want))
		tree := Build(p, DefaultBase)
		st := tree.AboveTheta(q, theta, retrieval.Collect(&got))
		if !retrieval.EqualSets(got, want) {
			t.Fatalf("trial %d: tree %d vs naive %d entries", trial, len(got), len(want))
		}
		if st.Candidates <= 0 {
			t.Error("no candidates counted")
		}
	}
}

func TestSingleTreeRowTopKMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	q := genMatrix(rng, 20, 7, 1.1)
	p := genMatrix(rng, 260, 7, 1.1)
	for _, k := range []int{1, 5, 17, 500} {
		want, _ := naive.RowTopK(q, p, k)
		tree := Build(p, DefaultBase)
		got, _ := tree.RowTopK(q, k)
		compareTopKValues(t, "single", got, want)
	}
}

func TestDualTreeAboveThetaMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	q := genMatrix(rng, 30, 6, 0.9)
	p := genMatrix(rng, 180, 6, 0.9)
	theta := pickTheta(q, p, 80)
	if theta <= 0 {
		t.Skip("no positive threshold")
	}
	var want, got []retrieval.Entry
	naive.AboveTheta(q, p, theta, retrieval.Collect(&want))
	dual := NewDual(q, p, DefaultBase)
	dual.AboveTheta(theta, retrieval.Collect(&got))
	if !retrieval.EqualSets(got, want) {
		t.Fatalf("dual %d vs naive %d entries", len(got), len(want))
	}
}

func TestDualTreeRowTopKMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	q := genMatrix(rng, 22, 6, 1.0)
	p := genMatrix(rng, 150, 6, 1.0)
	for _, k := range []int{1, 6, 400} {
		want, _ := naive.RowTopK(q, p, k)
		dual := NewDual(q, p, DefaultBase)
		got, _ := dual.RowTopK(k)
		compareTopKValues(t, "dual", got, want)
	}
}

func TestDualTreeReusableAcrossRuns(t *testing.T) {
	// Per-node bound caches must reset between runs; a second run with a
	// larger k must not inherit tighter bounds from the first.
	rng := rand.New(rand.NewSource(36))
	q := genMatrix(rng, 15, 5, 0.8)
	p := genMatrix(rng, 120, 5, 0.8)
	dual := NewDual(q, p, DefaultBase)
	if _, st := dual.RowTopK(1); st.Results != int64(q.N()) {
		t.Fatalf("first run results %d", st.Results)
	}
	want, _ := naive.RowTopK(q, p, 8)
	got, _ := dual.RowTopK(8)
	compareTopKValues(t, "rerun", got, want)
}

func TestPruningActuallyHappens(t *testing.T) {
	// Strong length skew and a high threshold: the tree must evaluate far
	// fewer kernels than m·n.
	rng := rand.New(rand.NewSource(37))
	q := genMatrix(rng, 50, 6, 1.5)
	p := genMatrix(rng, 1000, 6, 1.5)
	theta := pickTheta(q, p, 20)
	if theta <= 0 {
		t.Skip("no positive threshold")
	}
	tree := Build(p, DefaultBase)
	var got []retrieval.Entry
	st := tree.AboveTheta(q, theta, retrieval.Collect(&got))
	if st.Candidates >= int64(q.N())*int64(p.N())/2 {
		t.Errorf("tree evaluated %d of %d kernels; no pruning", st.Candidates, q.N()*p.N())
	}
}

func TestEmptyTrees(t *testing.T) {
	empty := Build(matrix.New(4, 0), DefaultBase)
	q := matrix.New(4, 3)
	var got []retrieval.Entry
	empty.AboveTheta(q, 1, retrieval.Collect(&got))
	if len(got) != 0 {
		t.Error("empty tree produced entries")
	}
	top, _ := empty.RowTopK(q, 2)
	for _, row := range top {
		if len(row) != 0 {
			t.Error("empty tree produced top-k entries")
		}
	}
	dual := NewDual(matrix.New(4, 0), matrix.New(4, 0), DefaultBase)
	dual.AboveTheta(1, retrieval.Collect(&got))
}

func pickTheta(q, p *matrix.Matrix, level int) float64 {
	var vals []float64
	for i := 0; i < q.N(); i++ {
		for j := 0; j < p.N(); j++ {
			vals = append(vals, vecmath.Dot(q.Vec(i), p.Vec(j)))
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	for lvl := level; lvl < len(vals); lvl++ {
		if vals[lvl-1] <= 0 {
			return -1
		}
		if vals[lvl-1]-vals[lvl] > 1e-7*(1+math.Abs(vals[lvl-1])) {
			return (vals[lvl-1] + vals[lvl]) / 2
		}
	}
	return -1
}

func compareTopKValues(t *testing.T, label string, got, want retrieval.TopK) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s row %d: %d entries, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			gv, wv := got[i][j].Value, want[i][j].Value
			if math.Abs(gv-wv) > 1e-9*(1+math.Abs(wv)) {
				t.Fatalf("%s row %d rank %d: %g vs %g", label, i, j, gv, wv)
			}
		}
	}
}
