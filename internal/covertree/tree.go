// Package covertree implements the cover-tree substrate used by the paper's
// tree-based baselines: the single-tree max-kernel search of Curtin, Ram &
// Gray ("Fast exact max-kernel search", SDM 2013 — the paper's Tree
// baseline) and the dual-tree variant of Curtin & Ram (2014 — the paper's
// D-Tree baseline), both specialized to the inner-product kernel.
//
// The tree is a simplified cover tree (one point per node, children strictly
// below their parent's level, children within the parent's cover radius).
// Search correctness does not depend on the cover invariants: every bound
// uses each node's exactly-computed maxDist (the maximum Euclidean distance
// from the node's point to any descendant point), so the invariants affect
// only efficiency. The paper sets the expansion base to 1.3; so do we.
package covertree

import (
	"fmt"
	"math"
	"time"

	"lemp/internal/matrix"
	"lemp/internal/vecmath"
)

// DefaultBase is the cover-tree expansion constant used in the paper (§6.1).
const DefaultBase = 1.3

// Tree is a cover tree over the vectors of a matrix. Points are referenced
// by their index in the matrix.
type Tree struct {
	points   *matrix.Matrix
	norms    []float64 // Euclidean norm of every point
	base     float64
	logBase  float64
	root     *node
	numNodes int
	prepTime time.Duration
}

type node struct {
	point    int32   // index into the point matrix
	level    int32   // cover level; covdist = base^level
	maxDist  float64 // exact max distance from point to any descendant point
	children []*node
	dupes    []int32 // points identical to this node's point
	selfLeaf *node   // lazy: leaf copy of this node's point, for dual traversal
	// bound caches the minimum running top-k threshold of the queries in
	// this subtree during a dual-tree Row-Top-k traversal. Stale (too
	// small) values are safe: they only weaken pruning.
	bound float64
}

// Build constructs a cover tree over all vectors of points with the given
// expansion base (use DefaultBase). The matrix must not be mutated while
// the tree is in use.
func Build(points *matrix.Matrix, base float64) *Tree {
	start := time.Now()
	if base <= 1 {
		panic("covertree: base must exceed 1")
	}
	t := &Tree{points: points, base: base, logBase: math.Log(base)}
	n := points.N()
	t.norms = make([]float64, n)
	for i := 0; i < n; i++ {
		t.norms[i] = vecmath.Norm(points.Vec(i))
	}
	for i := 0; i < n; i++ {
		t.insert(int32(i))
	}
	if t.root != nil {
		t.computeMaxDist(t.root)
	}
	t.prepTime = time.Since(start)
	return t
}

// N returns the number of indexed points.
func (t *Tree) N() int { return t.points.N() }

// NumNodes returns the number of tree nodes (excluding duplicate lists).
func (t *Tree) NumNodes() int { return t.numNodes }

// PrepTime returns the wall-clock construction time.
func (t *Tree) PrepTime() time.Duration { return t.prepTime }

func (t *Tree) covdist(level int32) float64 {
	return math.Pow(t.base, float64(level))
}

func (t *Tree) dist(a, b int32) float64 {
	return vecmath.Dist(t.points.Vec(int(a)), t.points.Vec(int(b)))
}

func (t *Tree) newNode(point int32, level int32) *node {
	t.numNodes++
	return &node{point: point, level: level, bound: math.Inf(-1)}
}

// levelFor returns the smallest level l with base^l ≥ d.
func (t *Tree) levelFor(d float64) int32 {
	if d <= 0 {
		return 0
	}
	return int32(math.Ceil(math.Log(d) / t.logBase))
}

func (t *Tree) insert(x int32) {
	if t.root == nil {
		t.root = t.newNode(x, 0)
		return
	}
	d := t.dist(t.root.point, x)
	if d == 0 {
		t.root.dupes = append(t.root.dupes, x)
		return
	}
	if d > t.covdist(t.root.level) {
		// Raise the root's level until it covers x, then attach x
		// directly beneath it. Raising a node's level preserves the
		// covering of its existing children.
		t.root.level = t.levelFor(d)
		t.root.children = append(t.root.children, t.newNode(x, t.root.level-1))
		return
	}
	t.insertCovered(t.root, x)
}

// insertCovered inserts x somewhere under p, given d(p,x) ≤ covdist(p).
func (t *Tree) insertCovered(p *node, x int32) {
	for {
		// Descend into the nearest child that covers x.
		var best *node
		bestD := math.Inf(1)
		for _, c := range p.children {
			d := t.dist(c.point, x)
			if d == 0 {
				c.dupes = append(c.dupes, x)
				return
			}
			if d <= t.covdist(c.level) && d < bestD {
				best, bestD = c, d
			}
		}
		if best == nil {
			p.children = append(p.children, t.newNode(x, p.level-1))
			return
		}
		p = best
	}
}

// computeMaxDist fills maxDist for every node: the exact maximum distance
// from the node's point to any point in its subtree. It returns the list of
// point indices in the subtree of n (shared backing storage is fine: the
// caller only reads).
func (t *Tree) computeMaxDist(n *node) []int32 {
	pts := []int32{n.point}
	pts = append(pts, n.dupes...)
	for _, c := range n.children {
		pts = append(pts, t.computeMaxDist(c)...)
	}
	var md float64
	for _, p := range pts {
		if d := t.dist(n.point, p); d > md {
			md = d
		}
	}
	n.maxDist = md
	return pts
}

// selfChild returns (creating on first use) a leaf node carrying n's point
// and duplicates, used when a dual traversal splits an internal node: the
// node's own point must remain reachable as a leaf.
func (n *node) selfChild() *node {
	if n.selfLeaf == nil {
		n.selfLeaf = &node{point: n.point, level: n.level - 1, dupes: n.dupes, bound: math.Inf(-1)}
	}
	return n.selfLeaf
}

// isLeaf reports whether n has no children.
func (n *node) isLeaf() bool { return len(n.children) == 0 }

// Validate checks the structural invariants, returning a descriptive
// non-nil error on the first violation. Used by tests.
func (t *Tree) Validate() error {
	if t.root == nil {
		if t.points.N() != 0 {
			return errorf("nil root with %d points", t.points.N())
		}
		return nil
	}
	count := 0
	var walk func(n *node) error
	walk = func(n *node) error {
		count += 1 + len(n.dupes)
		for _, c := range n.children {
			if c.level >= n.level {
				return errorf("child level %d not below parent level %d", c.level, n.level)
			}
			if d := t.dist(n.point, c.point); d > t.covdist(n.level)*(1+1e-9) {
				return errorf("child at distance %g exceeds cover radius %g", d, t.covdist(n.level))
			}
			if d := t.dist(n.point, c.point); d > n.maxDist+1e-9 {
				return errorf("maxDist %g smaller than child distance %g", n.maxDist, d)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if count != t.points.N() {
		return errorf("tree holds %d points, matrix has %d", count, t.points.N())
	}
	return nil
}

func errorf(format string, args ...any) error {
	return fmt.Errorf("covertree: "+format, args...)
}
