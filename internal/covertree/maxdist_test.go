package covertree

import (
	"math"
	"math/rand"
	"testing"
)

// maxDist must be the exact maximum distance from every node's point to any
// point in its subtree — the single quantity all search bounds rely on.
func TestMaxDistExact(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	p := genMatrix(rng, 400, 6, 1.2)
	tree := Build(p, DefaultBase)

	var walk func(n *node) []int32
	walk = func(n *node) []int32 {
		pts := []int32{n.point}
		pts = append(pts, n.dupes...)
		for _, c := range n.children {
			pts = append(pts, walk(c)...)
		}
		var want float64
		for _, q := range pts {
			if d := tree.dist(n.point, q); d > want {
				want = d
			}
		}
		if diff := n.maxDist - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("node %d: maxDist %g, exact %g", n.point, n.maxDist, want)
		}
		return pts
	}
	walk(tree.root)
}

func TestLevelForCoversDistance(t *testing.T) {
	tree := &Tree{base: DefaultBase, logBase: math.Log(DefaultBase)}
	for _, d := range []float64{0.001, 0.5, 1, 1.3, 2, 100, 1e6} {
		lvl := tree.levelFor(d)
		if tree.covdist(lvl) < d*(1-1e-12) {
			t.Errorf("levelFor(%g)=%d but covdist=%g < d", d, lvl, tree.covdist(lvl))
		}
		if lvl > 0 && tree.covdist(lvl-1) >= d*(1+1e-9) {
			t.Errorf("levelFor(%g)=%d not minimal (covdist(l-1)=%g)", d, lvl, tree.covdist(lvl-1))
		}
	}
	if tree.levelFor(0) != 0 {
		t.Error("levelFor(0) != 0")
	}
}
