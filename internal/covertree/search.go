package covertree

import (
	"time"

	"lemp/internal/matrix"
	"lemp/internal/retrieval"
	"lemp/internal/topk"
	"lemp/internal/vecmath"
)

// The single-tree max-kernel bound (Curtin, Ram & Gray 2013), specialized
// to the inner-product kernel K(q,p) = qᵀp: for any descendant p of a node
// with point pc and radius λ = maxDist,
//
//	qᵀp = qᵀpc + qᵀ(p−pc) ≤ qᵀpc + ‖q‖·λ.
//
// A subtree is pruned when this bound cannot reach the threshold.

// SearchAboveTheta walks the tree for query q (with norm qnorm) and calls
// onEval for every point whose inner product with q is computed, passing
// the exact value. Points in pruned subtrees are never evaluated. Callers
// filter by value; the number of onEval calls is the paper's candidate
// count. It returns the number of inner products computed.
func (t *Tree) SearchAboveTheta(q []float64, qnorm, theta float64, onEval func(id int32, v float64)) int64 {
	if t.root == nil {
		return 0
	}
	var evals int64
	var visit func(n *node, dotN float64)
	visit = func(n *node, dotN float64) {
		onEval(n.point, dotN)
		for _, d := range n.dupes {
			evals++ // identical point: value known without recomputation
			onEval(d, dotN)
		}
		for _, c := range n.children {
			dc := vecmath.Dot(q, t.points.Vec(int(c.point)))
			evals++
			if dc+qnorm*c.maxDist >= theta {
				visit(c, dc)
			} else {
				// Subtree pruned; the child's own product was
				// still computed, so report it.
				onEval(c.point, dc)
				for _, d := range c.dupes {
					evals++
					onEval(d, dc)
				}
			}
		}
	}
	dr := vecmath.Dot(q, t.points.Vec(int(t.root.point)))
	evals++
	if dr+qnorm*t.root.maxDist >= theta {
		visit(t.root, dr)
	} else {
		onEval(t.root.point, dr)
		for _, d := range t.root.dupes {
			evals++
			onEval(d, dr)
		}
	}
	return evals
}

// boundHeap is a max-heap of subtrees ordered by their kernel upper bound,
// used by the best-first Row-Top-k search.
type boundHeap struct {
	list []boundEntry
}

type boundEntry struct {
	bound float64
	dot   float64
	n     *node
}

func (h *boundHeap) push(e boundEntry) {
	h.list = append(h.list, e)
	i := len(h.list) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.list[parent].bound >= h.list[i].bound {
			break
		}
		h.list[parent], h.list[i] = h.list[i], h.list[parent]
		i = parent
	}
}

func (h *boundHeap) pop() boundEntry {
	top := h.list[0]
	last := len(h.list) - 1
	h.list[0] = h.list[last]
	h.list = h.list[:last]
	i, n := 0, len(h.list)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.list[l].bound > h.list[largest].bound {
			largest = l
		}
		if r < n && h.list[r].bound > h.list[largest].bound {
			largest = r
		}
		if largest == i {
			break
		}
		h.list[i], h.list[largest] = h.list[largest], h.list[i]
		i = largest
	}
	return top
}

// SearchRowTopK returns the k points with the largest inner products with q
// using best-first branch-and-bound, together with the number of inner
// products computed.
func (t *Tree) SearchRowTopK(q []float64, qnorm float64, k int) ([]topk.Item, int64) {
	if t.root == nil || k <= 0 {
		return nil, 0
	}
	kk := k
	if kk > t.N() {
		kk = t.N()
	}
	best := topk.New(kk)
	var evals int64
	var pq boundHeap
	dr := vecmath.Dot(q, t.points.Vec(int(t.root.point)))
	evals++
	pq.push(boundEntry{bound: dr + qnorm*t.root.maxDist, dot: dr, n: t.root})
	for len(pq.list) > 0 {
		e := pq.pop()
		if thr, ok := best.Threshold(); ok && e.bound < thr {
			break // every remaining subtree is bounded below the k-th best
		}
		best.Push(int(e.n.point), e.dot)
		for _, d := range e.n.dupes {
			evals++
			best.Push(int(d), e.dot)
		}
		for _, c := range e.n.children {
			dc := vecmath.Dot(q, t.points.Vec(int(c.point)))
			evals++
			b := dc + qnorm*c.maxDist
			if thr, ok := best.Threshold(); !ok || b >= thr {
				pq.push(boundEntry{bound: b, dot: dc, n: c})
			}
		}
	}
	return best.Items(), evals
}

// Stats reports the work done by a standalone tree baseline run.
type Stats struct {
	Queries    int
	Candidates int64 // inner products computed
	Results    int64
	PrepTime   time.Duration
	Time       time.Duration
}

// AboveTheta runs the single-tree baseline for the Above-θ problem over all
// query vectors.
func (t *Tree) AboveTheta(q *matrix.Matrix, theta float64, emit retrieval.Sink) Stats {
	start := time.Now()
	st := Stats{Queries: q.N(), PrepTime: t.prepTime}
	for i := 0; i < q.N(); i++ {
		qi := q.Vec(i)
		qn := vecmath.Norm(qi)
		st.Candidates += t.SearchAboveTheta(qi, qn, theta, func(id int32, v float64) {
			if v >= theta {
				st.Results++
				emit(retrieval.Entry{Query: i, Probe: int(id), Value: v})
			}
		})
	}
	st.Time = time.Since(start)
	return st
}

// RowTopK runs the single-tree baseline for the Row-Top-k problem over all
// query vectors.
func (t *Tree) RowTopK(q *matrix.Matrix, k int) (retrieval.TopK, Stats) {
	start := time.Now()
	st := Stats{Queries: q.N(), PrepTime: t.prepTime}
	out := make(retrieval.TopK, q.N())
	for i := 0; i < q.N(); i++ {
		qi := q.Vec(i)
		items, evals := t.SearchRowTopK(qi, vecmath.Norm(qi), k)
		st.Candidates += evals
		row := make([]retrieval.Entry, len(items))
		for j, it := range items {
			row[j] = retrieval.Entry{Query: i, Probe: it.ID, Value: it.Value}
		}
		st.Results += int64(len(row))
		out[i] = row
	}
	st.Time = time.Since(start)
	return out, st
}
