package bulk

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"math"
	"os"

	"lemp/internal/core"
)

// Checkpoint format (BULKCK): a fixed-size record naming how much of the
// result file is durable. Because the writer flushes panels strictly in
// panel order, two numbers pin the exact resume point — the count of
// flushed panels and the result-file byte offset they end at — and the CRC
// of that prefix proves the bytes on disk are the ones the checkpoint saw.
// Resume re-runs only panels ≥ Panels and appends at Offset, producing a
// byte-identical file to an uninterrupted run.
//
//	magic    [8]byte  "LEMPBCK1"
//	version  uint32   1
//	jobHash  uint64   fingerprint of the job shape (mode, k/θ, panel size,
//	                  query and probe dimensions, index epoch)
//	panels   uint64   panels flushed to the result file
//	offset   uint64   result-file size after those panels
//	outCRC   uint32   CRC-32 (IEEE) of result bytes [0, offset)
//	selfCRC  uint32   CRC-32 of the 40 bytes above
const (
	ckptMagic   = "LEMPBCK1"
	ckptVersion = 1
	ckptSize    = len(ckptMagic) + 4 + 8 + 8 + 8 + 4 + 4
)

// checkpoint is the decoded BULKCK record.
type checkpoint struct {
	jobHash uint64
	panels  uint64
	offset  uint64
	outCRC  uint32
}

// encode renders the record, self-CRC included.
func (ck checkpoint) encode() []byte {
	buf := make([]byte, ckptSize)
	copy(buf, ckptMagic)
	binary.LittleEndian.PutUint32(buf[8:], ckptVersion)
	binary.LittleEndian.PutUint64(buf[12:], ck.jobHash)
	binary.LittleEndian.PutUint64(buf[20:], ck.panels)
	binary.LittleEndian.PutUint64(buf[28:], ck.offset)
	binary.LittleEndian.PutUint32(buf[36:], ck.outCRC)
	binary.LittleEndian.PutUint32(buf[40:], crc32.ChecksumIEEE(buf[:40]))
	return buf
}

// readCheckpoint loads and validates a BULKCK file. Truncation, bad magic,
// an unknown version or a CRC mismatch are all rejected — a corrupted
// checkpoint must fail loudly rather than resume at the wrong offset.
func readCheckpoint(path string) (checkpoint, error) {
	var ck checkpoint
	buf, err := os.ReadFile(path)
	if err != nil {
		return ck, err
	}
	if len(buf) != ckptSize {
		return ck, fmt.Errorf("bulk: checkpoint %s: %d bytes, want %d (truncated or not a BULKCK file)", path, len(buf), ckptSize)
	}
	if string(buf[:8]) != ckptMagic {
		return ck, fmt.Errorf("bulk: checkpoint %s: bad magic %q", path, buf[:8])
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != ckptVersion {
		return ck, fmt.Errorf("bulk: checkpoint %s: unsupported version %d", path, v)
	}
	if got, want := crc32.ChecksumIEEE(buf[:40]), binary.LittleEndian.Uint32(buf[40:]); got != want {
		return ck, fmt.Errorf("bulk: checkpoint %s: CRC mismatch (corrupted)", path)
	}
	ck.jobHash = binary.LittleEndian.Uint64(buf[12:])
	ck.panels = binary.LittleEndian.Uint64(buf[20:])
	ck.offset = binary.LittleEndian.Uint64(buf[28:])
	ck.outCRC = binary.LittleEndian.Uint32(buf[36:])
	return ck, nil
}

// writeCheckpointAtomic persists the record with the snapshot machinery's
// write-to-temp-then-rename discipline, so a crash mid-checkpoint leaves
// the previous checkpoint intact.
func writeCheckpointAtomic(path string, ck checkpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(ck.encode()); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// jobHash fingerprints the job shape: everything that, if changed between
// runs, would make resumed output diverge from the original run's bytes or
// desync the panel↔offset mapping. It is a sanity check against resuming
// with the wrong inputs, not a content hash of the matrices — swapping in
// a different probe matrix with identical shape and epoch is on the
// operator.
func jobHash(ix *core.Index, src QuerySource, cfg Config) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	if cfg.K > 0 {
		put(1)
		put(uint64(cfg.K))
	} else {
		put(2)
		put(math.Float64bits(cfg.Theta))
	}
	put(uint64(cfg.PanelRows))
	put(uint64(src.N()))
	put(uint64(src.R()))
	put(uint64(ix.LiveN()))
	put(ix.Epoch())
	return h.Sum64()
}

// crcOfPrefix re-reads the first n bytes of f and returns their CRC-32,
// used at resume time to prove the result-file prefix matches what the
// checkpoint recorded.
func crcOfPrefix(f *os.File, n int64) (uint32, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	h := crc32.NewIEEE()
	if _, err := io.CopyN(h, f, n); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}
