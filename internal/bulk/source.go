// Package bulk is the offline throughput engine: it streams a huge query
// matrix through a LEMP index as tiles of query panels × probe buckets and
// writes the full result table to disk — the paper's original batch use
// case (recommendation tables from QPᵀ) run at production scale.
//
// The serving path (internal/server) optimizes per-request latency; bulk
// optimizes occupancy. Queries are cut into cache-sized panels, each panel
// claimed dynamically by a pool of workers from a shared cursor (no static
// pre-split, so stragglers on skewed catalogs delay one panel, not a
// worker's whole share), scanned single-threaded against the bucketed
// index with per-worker scratch reuse, quantized screening active inside
// the tiles when the index carries a sidecar, and exactly one tuning pass
// for the whole job (core.PanelRun). Panels are claimed as (query-panel ×
// all-buckets) tiles rather than (panel × single-bucket) ones: Row-Top-k
// carries a running θ′ bound across buckets, so splitting the bucket
// dimension would forfeit the pruning that makes LEMP fast.
//
// Completed panels pass through a bounded reordering writer that flushes
// them to the result file strictly in panel order, which makes the output
// deterministic and lets a small checkpoint (checkpoint.go) record exactly
// how much of it is durable: a killed job resumes from the checkpoint and
// produces a byte-identical file to an uninterrupted run.
package bulk

import (
	"lemp/internal/matrix"
)

// QuerySource yields contiguous panels of the query matrix. Panel must be
// safe for concurrent calls (the worker pool reads panels independently);
// returned matrices are owned by the caller.
//
// matrix.PanelReader implements it for LEMPMAT1 files; Matrix wraps an
// in-memory matrix.
type QuerySource interface {
	// R is the vector dimension.
	R() int
	// N is the total number of query vectors.
	N() int
	// Panel returns vectors [start, start+count).
	Panel(start, count int) (*matrix.Matrix, error)
}

// Matrix adapts an in-memory matrix as a QuerySource; panels alias the
// matrix storage (zero copy). The matrix must not be mutated while the job
// runs.
type Matrix struct {
	M *matrix.Matrix
}

func (s Matrix) R() int { return s.M.R() }
func (s Matrix) N() int { return s.M.N() }

func (s Matrix) Panel(start, count int) (*matrix.Matrix, error) {
	return s.M.Slice(start, start+count), nil
}

var _ QuerySource = Matrix{}
var _ QuerySource = (*matrix.PanelReader)(nil)
