package bulk

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"lemp/internal/retrieval"
)

// Results is a decoded LEMPBRS1 result table. Rows[i] holds query i's
// entries in the file's canonical order with Query filled in.
type Results struct {
	Mode      Mode
	K         int
	Theta     float64
	R         int
	PanelRows int
	Rows      retrieval.TopK
}

// ReadResults loads a bulk result file, validating the header and that the
// payload holds exactly the declared number of rows. Counts are untrusted:
// rows grow incrementally, so a lying header fails at the first missing
// byte instead of allocating its claim.
func ReadResults(path string) (*Results, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("bulk: reading result header: %w", err)
	}
	if string(hdr[:8]) != resultMagic {
		return nil, fmt.Errorf("bulk: bad result magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != resultVersion {
		return nil, fmt.Errorf("bulk: unsupported result version %d", v)
	}
	res := &Results{
		Mode:      Mode(hdr[12]),
		K:         int(binary.LittleEndian.Uint32(hdr[16:])),
		Theta:     math.Float64frombits(binary.LittleEndian.Uint64(hdr[20:])),
		R:         int(binary.LittleEndian.Uint32(hdr[36:])),
		PanelRows: int(binary.LittleEndian.Uint32(hdr[40:])),
	}
	if res.Mode != ModeTopK && res.Mode != ModeAbove {
		return nil, fmt.Errorf("bulk: invalid result mode %d", hdr[12])
	}
	m := binary.LittleEndian.Uint64(hdr[28:])
	if m > 1<<40 {
		return nil, fmt.Errorf("bulk: implausible query count %d", m)
	}
	res.Rows = make(retrieval.TopK, 0, min64(m, 1<<16))
	var rec [12]byte
	for q := uint64(0); q < m; q++ {
		if _, err := io.ReadFull(br, rec[:4]); err != nil {
			return nil, fmt.Errorf("bulk: reading row %d: %w", q, err)
		}
		count := binary.LittleEndian.Uint32(rec[:4])
		if count > 1<<31 {
			return nil, fmt.Errorf("bulk: row %d: implausible entry count %d", q, count)
		}
		var row []retrieval.Entry
		if count > 0 {
			row = make([]retrieval.Entry, 0, minU32(count, 1<<13))
		}
		for i := uint32(0); i < count; i++ {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return nil, fmt.Errorf("bulk: reading row %d entry %d: %w", q, i, err)
			}
			row = append(row, retrieval.Entry{
				Query: int(q),
				Probe: int(int32(binary.LittleEndian.Uint32(rec[:4]))),
				Value: math.Float64frombits(binary.LittleEndian.Uint64(rec[4:])),
			})
		}
		res.Rows = append(res.Rows, row)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("bulk: trailing bytes after %d rows", m)
	}
	return res, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
