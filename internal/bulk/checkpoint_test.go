package bulk

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"lemp/internal/matrix"
)

// killSource wraps a QuerySource and cancels the job's context after a
// fixed number of panel reads — a deterministic stand-in for killing the
// process mid-panel.
type killSource struct {
	QuerySource
	mu     sync.Mutex
	reads  int
	after  int
	cancel context.CancelFunc
}

func (ks *killSource) Panel(start, count int) (*matrix.Matrix, error) {
	ks.mu.Lock()
	ks.reads++
	if ks.reads == ks.after {
		ks.cancel()
	}
	ks.mu.Unlock()
	return ks.QuerySource.Panel(start, count)
}

// The headline guarantee: a job killed mid-panel and resumed from its
// checkpoint produces a byte-identical result file to an uninterrupted
// run.
func TestBulkResumeByteIdentical(t *testing.T) {
	ix, q := bulkFixture(t, 160, 350, 10, 41)
	dir := t.TempDir()
	cfg := Config{
		K:               4,
		PanelRows:       8, // 20 panels
		Parallelism:     4,
		CheckpointEvery: 2,
	}

	golden := filepath.Join(dir, "golden.lempbrs")
	if _, err := Run(context.Background(), ix, Matrix{M: q}, golden, cfg); err != nil {
		t.Fatal(err)
	}
	goldenBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "out.lempbrs")
	ckpt := filepath.Join(dir, "job.bulkck")
	cfg.Checkpoint = ckpt

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ks := &killSource{QuerySource: Matrix{M: q}, after: 9, cancel: cancel}
	if _, err := Run(ctx, ix, ks, out, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err=%v, want context.Canceled", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after interrupted run: %v", err)
	}
	interrupted, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(interrupted, goldenBytes) {
		t.Fatal("interrupted run already complete; kill earlier to make the test meaningful")
	}

	st, err := Run(context.Background(), ix, Matrix{M: q}, out, cfg)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	resumed, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, goldenBytes) {
		t.Fatalf("resumed output differs from uninterrupted run (%d vs %d bytes)", len(resumed), len(goldenBytes))
	}
	if st.ResumedPanels+st.Panels != 20 {
		t.Fatalf("resume stats: %+v", st)
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint not removed after completion: %v", err)
	}
}

// interruptedJob produces a checkpoint + partial result pair for the
// corruption tests.
func interruptedJob(t *testing.T, dir string) (cfg Config, out, ckpt string) {
	t.Helper()
	ix, q := bulkFixture(t, 120, 300, 9, 43)
	out = filepath.Join(dir, "out.lempbrs")
	ckpt = filepath.Join(dir, "job.bulkck")
	cfg = Config{
		K: 3, PanelRows: 8, Parallelism: 2,
		CheckpointEvery: 1, Checkpoint: ckpt,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ks := &killSource{QuerySource: Matrix{M: q}, after: 6, cancel: cancel}
	if _, err := Run(ctx, ix, ks, out, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: %v", err)
	}
	return cfg, out, ckpt
}

func resumeErr(t *testing.T, cfg Config, out string) error {
	t.Helper()
	ix, q := bulkFixture(t, 120, 300, 9, 43)
	_, err := Run(context.Background(), ix, Matrix{M: q}, out, cfg)
	return err
}

// Corrupted, truncated, or mismatched checkpoints must refuse to resume
// rather than write a wrong result file.
func TestBulkCheckpointRejection(t *testing.T) {
	t.Run("flipped byte", func(t *testing.T) {
		cfg, out, ckpt := interruptedJob(t, t.TempDir())
		buf, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		buf[20] ^= 0xff // somewhere in the payload
		if err := os.WriteFile(ckpt, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		err = resumeErr(t, cfg, out)
		if err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("corrupted checkpoint accepted: %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		cfg, out, ckpt := interruptedJob(t, t.TempDir())
		buf, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ckpt, buf[:len(buf)-5], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := resumeErr(t, cfg, out); err == nil {
			t.Fatal("truncated checkpoint accepted")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		cfg, out, ckpt := interruptedJob(t, t.TempDir())
		buf, _ := os.ReadFile(ckpt)
		copy(buf, "NOTBULK!")
		if err := os.WriteFile(ckpt, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		err := resumeErr(t, cfg, out)
		if err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("bad-magic checkpoint accepted: %v", err)
		}
	})
	t.Run("different job", func(t *testing.T) {
		cfg, out, _ := interruptedJob(t, t.TempDir())
		cfg.K = 7 // same checkpoint, different problem
		err := resumeErr(t, cfg, out)
		if err == nil || !strings.Contains(err.Error(), "different job") {
			t.Fatalf("foreign checkpoint accepted: %v", err)
		}
	})
	t.Run("result file truncated", func(t *testing.T) {
		cfg, out, _ := interruptedJob(t, t.TempDir())
		if err := os.Truncate(out, 10); err != nil {
			t.Fatal(err)
		}
		if err := resumeErr(t, cfg, out); err == nil {
			t.Fatal("truncated result file accepted")
		}
	})
	t.Run("result file tampered", func(t *testing.T) {
		cfg, out, ckpt := interruptedJob(t, t.TempDir())
		ck, err := readCheckpoint(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(out, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Flip the last byte of the checkpointed prefix — always inside
		// the CRC-covered range, whatever the kill landed on.
		var b [1]byte
		if _, err := f.ReadAt(b[:], int64(ck.offset)-1); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0xff
		if _, err := f.WriteAt(b[:], int64(ck.offset)-1); err != nil {
			t.Fatal(err)
		}
		f.Close()
		err = resumeErr(t, cfg, out)
		if err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("tampered result file accepted: %v", err)
		}
	})
	t.Run("result file missing", func(t *testing.T) {
		cfg, out, _ := interruptedJob(t, t.TempDir())
		if err := os.Remove(out); err != nil {
			t.Fatal(err)
		}
		if err := resumeErr(t, cfg, out); err == nil {
			t.Fatal("missing result file accepted")
		}
	})
}

// A fresh job with a checkpoint path configured but no checkpoint on disk
// starts from scratch and completes clean.
func TestBulkCheckpointFreshStart(t *testing.T) {
	ix, q := bulkFixture(t, 40, 200, 8, 47)
	dir := t.TempDir()
	out := filepath.Join(dir, "out.lempbrs")
	ckpt := filepath.Join(dir, "job.bulkck")
	st, err := Run(context.Background(), ix, Matrix{M: q}, out, Config{
		K: 3, PanelRows: 4, Checkpoint: ckpt, CheckpointEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoints == 0 {
		t.Fatal("no checkpoints written during run")
	}
	if _, err := os.Stat(ckpt); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("checkpoint left behind: %v", err)
	}
	if _, err := ReadResults(out); err != nil {
		t.Fatal(err)
	}
}
