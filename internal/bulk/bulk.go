package bulk

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"runtime"
	"sync"
	"time"

	"lemp/internal/core"
	"lemp/internal/retrieval"
)

// Config shapes one bulk job. Exactly one of K (Row-Top-k) or Theta
// (Above-θ) selects the problem; the zero value of everything else picks
// throughput-oriented defaults.
type Config struct {
	// K computes every query's k largest products (> 0 selects top-k mode).
	K int
	// Theta computes every product ≥ Theta (> 0 selects Above-θ mode).
	Theta float64
	// PanelRows is the query-panel height (default 256): large enough to
	// amortize per-panel sort and claim cost, small enough that a panel's
	// directions plus per-worker scratch stay cache-resident.
	PanelRows int
	// Parallelism is the worker-pool size (default all cores — this is
	// the throughput mode).
	Parallelism int
	// Window bounds how many panels past the flush frontier may be
	// claimed (default 4×Parallelism): it is the writer's reordering
	// buffer, so it also bounds result memory held for out-of-order
	// panels.
	Window int
	// Checkpoint, when non-empty, is the BULKCK file path: the job
	// checkpoints there every CheckpointEvery flushed panels, resumes
	// from it when it exists, and removes it on completion.
	Checkpoint string
	// CheckpointEvery is the checkpoint cadence in flushed panels
	// (default 64).
	CheckpointEvery int
	// Run carries per-job retrieval policy (algorithm override, tuning
	// cache). Parallelism inside Run is ignored — panel scans are
	// single-threaded, the pool parallelizes across panels.
	Run core.RunOptions
}

func (cfg Config) withDefaults() Config {
	if cfg.PanelRows == 0 {
		cfg.PanelRows = 256
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = runtime.NumCPU()
	}
	if cfg.Window == 0 {
		cfg.Window = 4 * cfg.Parallelism
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 64
	}
	return cfg
}

func (cfg Config) validate() error {
	if (cfg.K > 0) == (cfg.Theta > 0) {
		return fmt.Errorf("bulk: exactly one of K (%d) or Theta (%g) must be positive", cfg.K, cfg.Theta)
	}
	if cfg.K < 0 || cfg.PanelRows < 1 || cfg.Parallelism < 1 || cfg.Window < 1 || cfg.CheckpointEvery < 1 {
		return fmt.Errorf("bulk: invalid config (k=%d panel=%d parallel=%d window=%d ckpt-every=%d)",
			cfg.K, cfg.PanelRows, cfg.Parallelism, cfg.Window, cfg.CheckpointEvery)
	}
	return nil
}

// mode resolves the problem selected by the config.
func (cfg Config) mode() Mode {
	if cfg.K > 0 {
		return ModeTopK
	}
	return ModeAbove
}

// Stats reports one bulk run.
type Stats struct {
	// Core aggregates the retrieval work of every panel (TuneTime and
	// RetrievalTime are summed worker time, not wall clock).
	Core core.Stats
	// Rows is the total query count of the job; Panels the panel count
	// computed by THIS run, ResumedPanels those skipped because a
	// checkpoint had already flushed them.
	Rows          int
	Panels        int
	ResumedPanels int
	// Checkpoints counts BULKCK files written; OutBytes is the final
	// result-file size; Wall the run's wall-clock time.
	Checkpoints int
	OutBytes    int64
	Wall        time.Duration
}

// RowsPerSec is the throughput metric of the bench harness: rows computed
// by this run per second of wall clock.
func (s Stats) RowsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Rows) / s.Wall.Seconds()
}

// Run executes one bulk job: streams src through ix panel by panel with a
// worker pool and writes the LEMPBRS1 result table to outPath. The output
// is a pure function of (index, queries, problem): canonical row order,
// exact values, panels flushed strictly in order — so an interrupted job
// (context cancellation, crash) resumed from its checkpoint produces a
// byte-identical file to an uninterrupted run.
//
// Run follows the Index concurrency contract job-wide: no mutations and no
// other retrieval jobs on ix while Run executes.
func Run(ctx context.Context, ix *core.Index, src QuerySource, outPath string, cfg Config) (Stats, error) {
	cfg = cfg.withDefaults()
	var st Stats
	if err := cfg.validate(); err != nil {
		return st, err
	}
	if outPath == "" {
		return st, errors.New("bulk: output path required")
	}
	if src.R() != ix.R() {
		return st, fmt.Errorf("bulk: query dimension %d does not match index dimension %d", src.R(), ix.R())
	}
	mode := cfg.mode()
	m := src.N()
	panels := (m + cfg.PanelRows - 1) / cfg.PanelRows
	hash := jobHash(ix, src, cfg)
	start := time.Now()

	j, startPanel, err := openJob(outPath, mode, m, src.R(), panels, hash, cfg)
	if err != nil {
		return st, err
	}
	st.Rows = m
	st.ResumedPanels = startPanel
	st.Panels = panels - startPanel

	var pr *core.PanelRun
	if mode == ModeTopK {
		pr, err = ix.NewPanelRunTopK(cfg.K, cfg.Run)
	} else {
		pr, err = ix.NewPanelRunAbove(cfg.Theta, cfg.Run)
	}
	if err != nil {
		j.f.Close()
		return st, err
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Wake claim-blocked workers when the context dies.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-runCtx.Done():
			j.mu.Lock()
			j.cond.Broadcast()
			j.mu.Unlock()
		case <-watchDone:
		}
	}()

	workers := cfg.Parallelism
	if st.Panels < workers {
		workers = st.Panels
	}
	workerStats := make([]core.Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				idx, ok := j.claim(runCtx)
				if !ok {
					return
				}
				lo := idx * cfg.PanelRows
				hi := lo + cfg.PanelRows
				if hi > m {
					hi = m
				}
				buf, err := runPanel(runCtx, pr, src, mode, lo, hi, &workerStats[w])
				if err != nil {
					j.fail(err)
					cancel()
					return
				}
				if err := j.submit(idx, buf); err != nil {
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(watchDone)

	for i := range workerStats {
		st.Core.Add(workerStats[i])
	}
	j.mu.Lock()
	err = j.err
	st.OutBytes = j.offset
	j.mu.Unlock()
	if err == nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	if err != nil {
		// Best-effort final checkpoint: resume then loses only the
		// unflushed window, not everything since the last cadence mark.
		if cfg.Checkpoint != "" {
			j.mu.Lock()
			j.checkpointLocked(true)
			st.OutBytes = j.offset
			st.Checkpoints = j.checkpoints
			j.mu.Unlock()
		}
		j.f.Close()
		st.Wall = time.Since(start)
		return st, err
	}
	if err := j.finish(panels); err != nil {
		st.Wall = time.Since(start)
		return st, err
	}
	st.Checkpoints = j.checkpoints
	st.OutBytes = j.offset
	if cfg.Checkpoint != "" {
		if err := os.Remove(cfg.Checkpoint); err != nil && !errors.Is(err, fs.ErrNotExist) {
			st.Wall = time.Since(start)
			return st, fmt.Errorf("bulk: removing completed checkpoint: %w", err)
		}
	}
	st.Wall = time.Since(start)
	return st, nil
}

// runPanel computes and canonically encodes one panel.
func runPanel(ctx context.Context, pr *core.PanelRun, src QuerySource, mode Mode, lo, hi int, ws *core.Stats) ([]byte, error) {
	qm, err := src.Panel(lo, hi-lo)
	if err != nil {
		return nil, fmt.Errorf("bulk: reading query panel [%d,%d): %w", lo, hi, err)
	}
	if mode == ModeTopK {
		rows, pst, err := pr.TopKPanel(ctx, qm)
		if err != nil {
			return nil, err
		}
		ws.Add(pst)
		return encodeTopKPanel(rows), nil
	}
	rows := make([][]retrieval.Entry, qm.N())
	pst, err := pr.AbovePanel(ctx, qm, func(e retrieval.Entry) {
		rows[e.Query] = append(rows[e.Query], e)
	})
	if err != nil {
		return nil, err
	}
	ws.Add(pst)
	return encodeAbovePanel(rows), nil
}

// job is the shared write-side state: the claim cursor, the reordering
// buffer, the result file with its running CRC, and the checkpoint
// cadence. One mutex covers all of it — panel compute dominates, claims
// and submits are rare and cheap relative to a panel's scan.
type job struct {
	mu   sync.Mutex
	cond *sync.Cond

	f  *os.File
	bw *bufio.Writer

	panels    int
	window    int
	nextClaim int
	nextFlush int
	pending   map[int][]byte

	offset int64
	crc    uint32

	hash        uint64
	ckptPath    string
	ckptEvery   int
	lastCkpt    int
	checkpoints int

	err error
}

// openJob opens (or resumes) the result file and builds the job state.
// It returns the first panel index this run must compute.
func openJob(outPath string, mode Mode, m, r, panels int, hash uint64, cfg Config) (*job, int, error) {
	j := &job{
		panels:    panels,
		window:    cfg.Window,
		pending:   make(map[int][]byte),
		hash:      hash,
		ckptPath:  cfg.Checkpoint,
		ckptEvery: cfg.CheckpointEvery,
	}
	j.cond = sync.NewCond(&j.mu)

	if cfg.Checkpoint != "" {
		ck, err := readCheckpoint(cfg.Checkpoint)
		switch {
		case err == nil:
			if ck.jobHash != hash {
				return nil, 0, fmt.Errorf("bulk: checkpoint %s was written by a different job (hash %016x, this job %016x); delete it to start over", cfg.Checkpoint, ck.jobHash, hash)
			}
			if ck.panels > uint64(panels) {
				return nil, 0, fmt.Errorf("bulk: checkpoint %s claims %d panels done of %d", cfg.Checkpoint, ck.panels, panels)
			}
			f, err := os.OpenFile(outPath, os.O_RDWR, 0)
			if err != nil {
				return nil, 0, fmt.Errorf("bulk: checkpoint exists but result file does not: %w", err)
			}
			fi, err := f.Stat()
			if err != nil {
				f.Close()
				return nil, 0, err
			}
			if fi.Size() < int64(ck.offset) {
				f.Close()
				return nil, 0, fmt.Errorf("bulk: result file %s holds %d bytes but checkpoint requires %d", outPath, fi.Size(), ck.offset)
			}
			crc, err := crcOfPrefix(f, int64(ck.offset))
			if err != nil {
				f.Close()
				return nil, 0, err
			}
			if crc != ck.outCRC {
				f.Close()
				return nil, 0, fmt.Errorf("bulk: result file %s does not match checkpoint (CRC %08x, want %08x)", outPath, crc, ck.outCRC)
			}
			// Drop any bytes past the checkpoint — panels flushed but
			// not yet checkpointed are recomputed.
			if err := f.Truncate(int64(ck.offset)); err != nil {
				f.Close()
				return nil, 0, err
			}
			if _, err := f.Seek(int64(ck.offset), 0); err != nil {
				f.Close()
				return nil, 0, err
			}
			j.f = f
			j.bw = bufio.NewWriterSize(f, 1<<20)
			j.offset = int64(ck.offset)
			j.crc = ck.outCRC
			j.nextClaim = int(ck.panels)
			j.nextFlush = int(ck.panels)
			j.lastCkpt = int(ck.panels)
			return j, int(ck.panels), nil
		case errors.Is(err, fs.ErrNotExist):
			// Fresh start below.
		default:
			return nil, 0, err
		}
	}
	f, err := os.Create(outPath)
	if err != nil {
		return nil, 0, err
	}
	j.f = f
	j.bw = bufio.NewWriterSize(f, 1<<20)
	hdr := encodeHeader(mode, cfg.K, cfg.Theta, m, r, cfg.PanelRows)
	if _, err := j.bw.Write(hdr); err != nil {
		f.Close()
		return nil, 0, err
	}
	j.offset = int64(len(hdr))
	j.crc = crc32.ChecksumIEEE(hdr)
	return j, 0, nil
}

// claim hands out the next panel index, blocking while the claim frontier
// is a full window ahead of the flush frontier (bounded reordering
// memory). ok=false means the job is drained, failed, or canceled.
func (j *job) claim(ctx context.Context) (int, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.err != nil || ctx.Err() != nil || j.nextClaim >= j.panels {
			return 0, false
		}
		if j.nextClaim < j.nextFlush+j.window {
			idx := j.nextClaim
			j.nextClaim++
			return idx, true
		}
		j.cond.Wait()
	}
}

// fail records the job's first error and wakes blocked claimers.
func (j *job) fail(err error) {
	j.mu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.cond.Broadcast()
	j.mu.Unlock()
}

// submit hands a computed panel to the writer. Panels are buffered until
// they are the flush frontier, then written in panel order; the running
// CRC and offset advance only with flushed bytes, so a checkpoint always
// describes a strictly in-order prefix.
func (j *job) submit(idx int, buf []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.pending[idx] = buf
	for {
		b, ok := j.pending[j.nextFlush]
		if !ok {
			break
		}
		if _, err := j.bw.Write(b); err != nil {
			j.err = fmt.Errorf("bulk: writing panel %d: %w", j.nextFlush, err)
			j.cond.Broadcast()
			return j.err
		}
		j.crc = crc32.Update(j.crc, crc32.IEEETable, b)
		j.offset += int64(len(b))
		delete(j.pending, j.nextFlush)
		j.nextFlush++
	}
	j.cond.Broadcast()
	if j.ckptPath != "" && j.nextFlush-j.lastCkpt >= j.ckptEvery && j.nextFlush < j.panels {
		j.checkpointLocked(false)
	}
	return j.err
}

// checkpointLocked makes the flushed prefix durable (flush + fsync) and
// atomically replaces the BULKCK file. Called with j.mu held. In
// best-effort mode (a failing job's final checkpoint) errors are swallowed
// — the previous checkpoint remains valid either way, thanks to the
// write-to-temp-then-rename discipline.
func (j *job) checkpointLocked(bestEffort bool) {
	if j.nextFlush == j.lastCkpt && j.checkpoints > 0 {
		return
	}
	err := j.bw.Flush()
	if err == nil {
		err = j.f.Sync()
	}
	if err == nil {
		err = writeCheckpointAtomic(j.ckptPath, checkpoint{
			jobHash: j.hash,
			panels:  uint64(j.nextFlush),
			offset:  uint64(j.offset),
			outCRC:  j.crc,
		})
	}
	if err == nil {
		j.lastCkpt = j.nextFlush
		j.checkpoints++
		return
	}
	if !bestEffort && j.err == nil {
		j.err = fmt.Errorf("bulk: checkpoint: %w", err)
		j.cond.Broadcast()
	}
}

// finish flushes and closes a successful job, asserting every panel was
// written.
func (j *job) finish(panels int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.nextFlush != panels {
		j.f.Close()
		return fmt.Errorf("bulk: internal error: %d of %d panels flushed", j.nextFlush, panels)
	}
	if err := j.bw.Flush(); err != nil {
		j.f.Close()
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
