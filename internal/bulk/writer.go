package bulk

import (
	"encoding/binary"
	"math"
	"sort"

	"lemp/internal/retrieval"
)

// Result format (LEMPBRS1): the full result table, rows in query order, a
// self-describing header in front. Values are raw float64 bits — the
// result is the paper's exact answer, not a rounded export.
//
//	magic      [8]byte  "LEMPBRS1"
//	version    uint32   1
//	mode       uint8    1 = Row-Top-k, 2 = Above-θ
//	pad        [3]byte
//	k          uint32   (0 in Above-θ mode)
//	theta      float64  (0 in Row-Top-k mode)
//	queries    uint64   number of rows that follow
//	r          uint32   query vector dimension
//	panelRows  uint32   panel size the job ran with
//	rows       queries × { count uint32, count × { probe uint32, value uint64 } }
//
// Row order is canonical — Row-Top-k entries by (value desc, probe asc),
// Above-θ entries by probe asc — NOT the engine's emit order. Exact LEMP
// retrieval fixes each row's entry SET and every value bit-for-bit
// regardless of bucket algorithm or tuning, but the order candidates
// surface in does depend on tuning, and a resumed job re-tunes on whatever
// panel it processes first. Canonicalizing at encode time is what makes
// the file a pure function of (index, queries, problem) — and resume
// byte-identical.
const (
	resultMagic   = "LEMPBRS1"
	resultVersion = 1
	headerSize    = len(resultMagic) + 4 + 4 + 4 + 8 + 8 + 4 + 4
)

// Mode selects the bulk problem.
type Mode uint8

const (
	// ModeTopK computes every query's k largest products (Problem 2).
	ModeTopK Mode = 1
	// ModeAbove computes every product ≥ θ (Problem 1).
	ModeAbove Mode = 2
)

func (m Mode) String() string {
	switch m {
	case ModeTopK:
		return "topk"
	case ModeAbove:
		return "above"
	}
	return "invalid"
}

// encodeHeader renders the LEMPBRS1 preamble for a job over m queries of
// dimension r.
func encodeHeader(mode Mode, k int, theta float64, m, r, panelRows int) []byte {
	buf := make([]byte, headerSize)
	copy(buf, resultMagic)
	binary.LittleEndian.PutUint32(buf[8:], resultVersion)
	buf[12] = byte(mode)
	binary.LittleEndian.PutUint32(buf[16:], uint32(k))
	binary.LittleEndian.PutUint64(buf[20:], math.Float64bits(theta))
	binary.LittleEndian.PutUint64(buf[28:], uint64(m))
	binary.LittleEndian.PutUint32(buf[36:], uint32(r))
	binary.LittleEndian.PutUint32(buf[40:], uint32(panelRows))
	return buf
}

// appendRow appends one row's canonical encoding.
func appendRow(buf []byte, row []retrieval.Entry) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(row)))
	for _, e := range row {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Probe))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Value))
	}
	return buf
}

// CanonicalizeTopK orders a Row-Top-k row by (value desc, probe asc) in
// place: the file order, and the order cross-checks against the serving
// path must apply to both sides before comparing (the serving path breaks
// value ties arbitrarily).
func CanonicalizeTopK(row []retrieval.Entry) {
	sort.Slice(row, func(a, b int) bool {
		if row[a].Value != row[b].Value {
			return row[a].Value > row[b].Value
		}
		return row[a].Probe < row[b].Probe
	})
}

// canonicalizeAbove orders an Above-θ row by probe id ascending in place
// (one entry per probe, so the order is total).
func canonicalizeAbove(row []retrieval.Entry) {
	sort.Slice(row, func(a, b int) bool { return row[a].Probe < row[b].Probe })
}

// encodeTopKPanel renders a panel's rows (panel-local order) canonically.
func encodeTopKPanel(rows retrieval.TopK) []byte {
	size := 0
	for _, row := range rows {
		size += 4 + 12*len(row)
	}
	buf := make([]byte, 0, size)
	for _, row := range rows {
		CanonicalizeTopK(row)
		buf = appendRow(buf, row)
	}
	return buf
}

// encodeAbovePanel renders a panel's per-row entry lists canonically.
func encodeAbovePanel(rows [][]retrieval.Entry) []byte {
	size := 0
	for _, row := range rows {
		size += 4 + 12*len(row)
	}
	buf := make([]byte, 0, size)
	for _, row := range rows {
		canonicalizeAbove(row)
		buf = appendRow(buf, row)
	}
	return buf
}
