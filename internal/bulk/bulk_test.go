package bulk

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lemp/internal/core"
	"lemp/internal/matrix"
	"lemp/internal/retrieval"
)

func bulkFixture(t *testing.T, m, n, r int, seed int64) (*core.Index, *matrix.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := matrix.New(r, n)
	p.FillRandom(rng)
	q := matrix.New(r, m)
	q.FillRandom(rng)
	if m > 3 {
		// A zero query exercises the empty-row path through the writer.
		for f := 0; f < r; f++ {
			q.Vec(3)[f] = 0
		}
	}
	ix, err := core.NewIndex(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ix, q
}

// Bulk Row-Top-k must reproduce the serving path exactly: same entry sets,
// same values bit-for-bit, rows in canonical order.
func TestBulkTopKMatchesServing(t *testing.T) {
	ix, q := bulkFixture(t, 137, 400, 12, 21)
	const k = 5
	out := filepath.Join(t.TempDir(), "topk.lempbrs")
	st, err := Run(context.Background(), ix, Matrix{M: q}, out, Config{
		K: k, PanelRows: 16, Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != q.N() || st.Panels != (q.N()+15)/16 || st.ResumedPanels != 0 {
		t.Fatalf("stats: %+v", st)
	}
	res, err := ReadResults(out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeTopK || res.K != k || res.R != q.R() || len(res.Rows) != q.N() {
		t.Fatalf("result header: %+v (rows %d)", res, len(res.Rows))
	}
	want, _, err := ix.RowTopK(q, k)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range want {
		CanonicalizeTopK(row)
		if !reflect.DeepEqual(res.Rows[i], row) {
			t.Fatalf("row %d: bulk %v serving %v", i, res.Rows[i], row)
		}
	}
}

// Bulk Above-θ must reproduce the serving path's entry sets exactly.
func TestBulkAboveMatchesServing(t *testing.T) {
	ix, q := bulkFixture(t, 90, 350, 10, 23)
	const theta = 2.0
	out := filepath.Join(t.TempDir(), "above.lempbrs")
	_, err := Run(context.Background(), ix, Matrix{M: q}, out, Config{
		Theta: theta, PanelRows: 13, Parallelism: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReadResults(out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeAbove || res.Theta != theta {
		t.Fatalf("result header: %+v", res)
	}
	want := make(retrieval.TopK, q.N())
	if _, err := ix.AboveTheta(q, theta, func(e retrieval.Entry) {
		want[e.Query] = append(want[e.Query], e)
	}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, row := range want {
		canonicalizeAbove(row)
		if len(row) == 0 && len(res.Rows[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(res.Rows[i], row) {
			t.Fatalf("row %d: bulk %v serving %v", i, res.Rows[i], row)
		}
		total += len(row)
	}
	if total == 0 {
		t.Fatal("fixture produced no Above-θ entries; lower theta")
	}
}

// A job fed from a LEMPMAT1 file on disk must write the same bytes as one
// fed from memory, and two identical runs must be byte-identical.
func TestBulkFileSourceByteIdentical(t *testing.T) {
	ix, q := bulkFixture(t, 75, 300, 8, 29)
	dir := t.TempDir()
	qPath := filepath.Join(dir, "queries.lempmat")
	f, err := os.Create(qPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := matrix.WriteBinary(f, q); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 4, PanelRows: 11, Parallelism: 4}

	memOut := filepath.Join(dir, "mem.lempbrs")
	if _, err := Run(context.Background(), ix, Matrix{M: q}, memOut, cfg); err != nil {
		t.Fatal(err)
	}
	pr, err := matrix.OpenPanelReader(qPath)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	fileOut := filepath.Join(dir, "file.lempbrs")
	if _, err := Run(context.Background(), ix, pr, fileOut, cfg); err != nil {
		t.Fatal(err)
	}
	memBytes, err := os.ReadFile(memOut)
	if err != nil {
		t.Fatal(err)
	}
	fileBytes, err := os.ReadFile(fileOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(memBytes, fileBytes) {
		t.Fatal("file-sourced job bytes differ from memory-sourced job")
	}
}

// Zero queries still produce a valid, readable result file.
func TestBulkEmptyQueries(t *testing.T) {
	ix, _ := bulkFixture(t, 4, 60, 6, 31)
	q := matrix.New(6, 0)
	out := filepath.Join(t.TempDir(), "empty.lempbrs")
	st, err := Run(context.Background(), ix, Matrix{M: q}, out, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 0 || st.Panels != 0 {
		t.Fatalf("stats: %+v", st)
	}
	res, err := ReadResults(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
}

func TestBulkConfigValidation(t *testing.T) {
	ix, q := bulkFixture(t, 8, 40, 6, 33)
	out := filepath.Join(t.TempDir(), "out.lempbrs")
	src := Matrix{M: q}
	bad := []Config{
		{},                      // no mode
		{K: 3, Theta: 1.5},      // both modes
		{K: -1},                 // negative k
		{K: 3, PanelRows: -4},   // bad panel size
		{K: 3, Parallelism: -1}, // bad parallelism
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), ix, src, out, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := Run(context.Background(), ix, src, "", Config{K: 3}); err == nil {
		t.Error("empty output path accepted")
	}
	wrongDim := matrix.New(q.R()+1, 5)
	if _, err := Run(context.Background(), ix, Matrix{M: wrongDim}, out, Config{K: 3}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}
