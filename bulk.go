package lemp

import (
	"context"

	"lemp/internal/bulk"
	"lemp/internal/core"
	"lemp/internal/matrix"
)

// Bulk (offline) top-k jobs, re-exported from the internal bulk package:
// the throughput counterpart to Retrieve. A bulk job streams the whole
// query matrix through the index as query panels claimed by a worker pool,
// tunes once for the entire job, and writes the full result table to disk
// with bounded memory — the paper's original batch use case
// (recommendation tables from QPᵀ) at production scale. The output is a
// pure function of (index, queries, problem): rows in canonical order,
// byte-identical across runs and across checkpoint/resume.

// BulkStats reports one bulk run.
type BulkStats = bulk.Stats

// BulkResults is a decoded bulk result file; see ReadBulkResults.
type BulkResults = bulk.Results

// BulkQuerySource yields contiguous panels of the query matrix to a bulk
// job; implementations must allow concurrent Panel calls. Use BulkQueries
// for an in-memory matrix or OpenQueryPanels to stream a LEMPMAT1 file.
type BulkQuerySource = bulk.QuerySource

// QueryPanels streams panels of an on-disk LEMPMAT1 matrix without loading
// it into memory; Close when the job is done.
type QueryPanels = matrix.PanelReader

// BulkOptions tune a bulk job; the zero value selects throughput-oriented
// defaults (256-row panels, all cores, no checkpointing).
type BulkOptions struct {
	// PanelRows is the query-panel height (default 256).
	PanelRows int
	// Parallelism is the worker-pool size (default all cores).
	Parallelism int
	// Window bounds how many panels past the flush frontier may be in
	// flight (default 4×Parallelism); it caps result memory held for
	// out-of-order panels.
	Window int
	// Checkpoint, when non-empty, names the BULKCK checkpoint file: the
	// job checkpoints there every CheckpointEvery flushed panels
	// (default 64), resumes from it when it exists, and removes it on
	// completion. A resumed job writes a byte-identical result file to
	// an uninterrupted one.
	Checkpoint      string
	CheckpointEvery int
	// Algorithm optionally overrides the index's bucket algorithm for
	// this job, like WithAlgorithm does per Retrieve call.
	Algorithm *Algorithm
	// Cache optionally reuses fitted tuning parameters across jobs, like
	// WithTuningCache does per Retrieve call.
	Cache *TuningCache
}

func (o BulkOptions) config() bulk.Config {
	return bulk.Config{
		PanelRows:       o.PanelRows,
		Parallelism:     o.Parallelism,
		Window:          o.Window,
		Checkpoint:      o.Checkpoint,
		CheckpointEvery: o.CheckpointEvery,
		Run:             core.RunOptions{Algorithm: o.Algorithm, Cache: o.Cache},
	}
}

// BulkTopK streams every query in src through the index and writes each
// query's k largest products to outPath as a LEMPBRS1 result table
// (readable with ReadBulkResults). Rows are exactly what Retrieve with
// TopK(k) returns for the same query, in canonical (value desc, probe asc)
// order. The Index contract applies job-wide: no mutations and no other
// retrieval calls while the job runs.
func (ix *Index) BulkTopK(ctx context.Context, src BulkQuerySource, outPath string, k int, opts BulkOptions) (BulkStats, error) {
	cfg := opts.config()
	cfg.K = k
	return bulk.Run(ctx, ix.inner, src, outPath, cfg)
}

// BulkAboveTheta streams every query in src through the index and writes
// each query's products ≥ theta to outPath, rows in canonical (probe asc)
// order. See BulkTopK for the contract.
func (ix *Index) BulkAboveTheta(ctx context.Context, src BulkQuerySource, outPath string, theta float64, opts BulkOptions) (BulkStats, error) {
	cfg := opts.config()
	cfg.Theta = theta
	return bulk.Run(ctx, ix.inner, src, outPath, cfg)
}

// BulkQueries adapts an in-memory matrix as a bulk query source (zero
// copy; the matrix must not be mutated while the job runs).
func BulkQueries(m *Matrix) BulkQuerySource { return bulk.Matrix{M: m} }

// OpenQueryPanels opens an on-disk LEMPMAT1 matrix for panel streaming, so
// bulk jobs read queries with bounded memory instead of loading the whole
// matrix.
func OpenQueryPanels(path string) (*QueryPanels, error) {
	return matrix.OpenPanelReader(path)
}

// ReadBulkResults loads a bulk result file written by BulkTopK or
// BulkAboveTheta.
func ReadBulkResults(path string) (*BulkResults, error) { return bulk.ReadResults(path) }
