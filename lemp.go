// Package lemp retrieves the large entries of a matrix product QᵀP without
// computing the product, implementing the LEMP algorithm of Teflioudi,
// Gemulla and Mykytiuk ("LEMP: Fast Retrieval of Large Entries in a Matrix
// Product", SIGMOD 2015).
//
// Q (r×m) and P (r×n) are tall-and-skinny factor matrices — typically the
// output of a low-rank factorization — whose columns are query and probe
// vectors; entry (i,j) of QᵀP is the inner product of query i and probe j.
// LEMP solves two problems exactly:
//
//   - Above-θ: all entries with value ≥ θ (Index.AboveTheta), and
//   - Row-Top-k: the k largest entries of every row (Index.RowTopK).
//
// It groups probe vectors into cache-sized buckets of similar length,
// prunes whole buckets with a per-query local threshold, and solves a small
// cosine-similarity search problem per surviving bucket with a
// bucket-algorithm selected at run time. See Options for the available
// bucket algorithms (the default, LI, is the paper's overall winner).
//
// A minimal session:
//
//	probe, _ := lemp.MatrixFromVectors(itemFactors)
//	index, _ := lemp.New(probe, lemp.Options{})
//	query, _ := lemp.MatrixFromVectors(userFactors)
//	top, _, _ := index.RowTopK(query, 10)
package lemp

import (
	"time"

	"lemp/internal/core"
	"lemp/internal/matrix"
	"lemp/internal/retrieval"
)

// Entry is one large entry of QᵀP: Value = (query column Query)ᵀ·(probe
// column Probe).
type Entry = retrieval.Entry

// TopK holds a Row-Top-k result: TopK[i] lists query i's top entries by
// decreasing value.
type TopK = retrieval.TopK

// Stats reports wall-clock phases and pruning effectiveness of a run.
type Stats = core.Stats

// Options configure an Index; the zero value selects the paper's defaults.
type Options = core.Options

// Algorithm selects the bucket-level retrieval method.
type Algorithm = core.Algorithm

// Bucket algorithms, named as in the paper's LEMP-X variants.
const (
	// AlgorithmLI mixes LENGTH and INCR (default; the paper's winner).
	AlgorithmLI = core.AlgLI
	// AlgorithmL is pure length-based pruning.
	AlgorithmL = core.AlgL
	// AlgorithmC is pure coordinate-based pruning.
	AlgorithmC = core.AlgC
	// AlgorithmI is pure incremental pruning.
	AlgorithmI = core.AlgI
	// AlgorithmLC mixes LENGTH and COORD.
	AlgorithmLC = core.AlgLC
	// AlgorithmTA runs the threshold algorithm per bucket.
	AlgorithmTA = core.AlgTA
	// AlgorithmTree runs a cover tree per bucket.
	AlgorithmTree = core.AlgTree
	// AlgorithmL2AP runs an L2AP index per bucket.
	AlgorithmL2AP = core.AlgL2AP
	// AlgorithmBLSH prunes with BayesLSH-Lite signatures (approximate:
	// each true result is missed with probability ≤ Options.Epsilon).
	AlgorithmBLSH = core.AlgBLSH
)

// ParseAlgorithm resolves a LEMP-X suffix such as "LI" or "l2ap".
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// Index is a LEMP index over a probe matrix, ready to answer Above-θ and
// Row-Top-k queries. Build one with New; it is safe for concurrent reads
// only through a single retrieval call at a time (use Options.Parallelism
// for intra-call parallelism).
type Index struct {
	inner *core.Index
}

// New preprocesses the probe matrix into a LEMP index (bucketization by
// vector length; per-bucket search indexes are built lazily during
// retrieval). The matrix must not be mutated while the index is in use.
func New(probe *Matrix, opts Options) (*Index, error) {
	inner, err := core.NewIndex(probe, opts)
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner}, nil
}

// N returns the number of indexed probe vectors.
func (ix *Index) N() int { return ix.inner.N() }

// R returns the vector dimension.
func (ix *Index) R() int { return ix.inner.R() }

// NumBuckets returns the number of probe buckets.
func (ix *Index) NumBuckets() int { return ix.inner.NumBuckets() }

// BucketInfo describes one probe bucket (size, length range, lazy-index and
// tuning state).
type BucketInfo = core.BucketInfo

// Buckets reports per-bucket state in decreasing-length order; tuning
// fields are meaningful after a retrieval call with a tuning algorithm.
func (ix *Index) Buckets() []BucketInfo { return ix.inner.Buckets() }

// PrepTime returns the preprocessing wall-clock time.
func (ix *Index) PrepTime() time.Duration { return ix.inner.PrepTime() }

// AboveTheta returns every entry of QᵀP with value ≥ theta (θ > 0), in
// unspecified order. For very large result sets prefer AboveThetaFunc,
// which streams entries without materializing them.
func (ix *Index) AboveTheta(q *Matrix, theta float64) ([]Entry, Stats, error) {
	var out []Entry
	st, err := ix.inner.AboveTheta(q, theta, retrieval.Collect(&out))
	return out, st, err
}

// AboveThetaFunc streams every entry of QᵀP with value ≥ theta to emit.
// The Entry passed to emit must not be retained.
func (ix *Index) AboveThetaFunc(q *Matrix, theta float64, emit func(Entry)) (Stats, error) {
	return ix.inner.AboveTheta(q, theta, retrieval.Sink(emit))
}

// RowTopK returns, for every query vector, its k probe vectors with the
// largest inner products, by decreasing value (fewer than k when the index
// holds fewer probes). Ties are broken arbitrarily.
func (ix *Index) RowTopK(q *Matrix, k int) (TopK, Stats, error) {
	return ix.inner.RowTopK(q, k)
}

// ApproxOptions tune RowTopKApprox (cluster count, candidate expansion).
type ApproxOptions = core.ApproxOptions

// RowTopKApprox answers Row-Top-k approximately by clustering the queries
// and retrieving exactly only for cluster centroids (the scheme of
// Koenigstein et al. the paper cites as composable with LEMP). Values are
// exact inner products, but some true top-k members may be missing; use
// Recall to quantify quality against an exact run.
func (ix *Index) RowTopKApprox(q *Matrix, k int, opts ApproxOptions) (TopK, Stats, error) {
	return ix.inner.RowTopKApprox(q, k, opts)
}

// Recall returns the average fraction of exact top-k entries recovered by
// an approximate run, per query.
func Recall(exact, approx TopK) float64 { return core.Recall(exact, approx) }

// MergeTopK k-way-merges Row-Top-k results obtained from disjoint shards of
// one probe matrix into a single global result. Each part must hold one row
// per query (sorted by decreasing value, as RowTopK returns them) with probe
// ids already remapped to the global id space; merged rows keep the k
// largest entries overall. It is the merge step used by sharded serving.
func MergeTopK(k int, parts ...TopK) TopK { return retrieval.MergeTopK(k, parts...) }

// SortEntries orders entries canonically by (Query, Probe) ascending, the
// deterministic order used when emitting Above-θ result sets.
func SortEntries(entries []Entry) { retrieval.Sort(entries) }

// Matrix is a tall-and-skinny factor matrix: n vectors of dimension r,
// where vector j is the paper's column j.
type Matrix = matrix.Matrix
