// Package lemp retrieves the large entries of a matrix product QᵀP without
// computing the product, implementing the LEMP algorithm of Teflioudi,
// Gemulla and Mykytiuk ("LEMP: Fast Retrieval of Large Entries in a Matrix
// Product", SIGMOD 2015).
//
// Q (r×m) and P (r×n) are tall-and-skinny factor matrices — typically the
// output of a low-rank factorization — whose columns are query and probe
// vectors; entry (i,j) of QᵀP is the inner product of query i and probe j.
// LEMP solves two problems exactly:
//
//   - Above-θ: all entries with value ≥ θ (the AboveTheta option), and
//   - Row-Top-k: the k largest entries of every row (the TopK option).
//
// It groups probe vectors into cache-sized buckets of similar length,
// prunes whole buckets with a per-query local threshold, and solves a small
// cosine-similarity search problem per surviving bucket with a
// bucket-algorithm selected at run time. See Options for the available
// bucket algorithms (the default, LI, is the paper's overall winner).
//
// A minimal session:
//
//	probe, _ := lemp.MatrixFromVectors(itemFactors)
//	index, _ := lemp.New(probe, lemp.Options{})
//	query, _ := lemp.MatrixFromVectors(userFactors)
//	res, _ := index.Retrieve(ctx, query, lemp.TopK(10))
//	for _, row := range res.TopK { ... }
//
// Retrieve is the context-aware entry point for every mode; per-call policy
// — algorithm, parallelism, tuning reuse, approximation, streaming — is
// selected with functional options (TopK, AboveTheta, WithAlgorithm,
// WithParallelism, WithTuningCache, Approx, Stream). The methods RowTopK,
// AboveTheta, AboveThetaFunc and RowTopKApprox are thin wrappers over
// Retrieve kept for convenience and compatibility.
package lemp

import (
	"context"
	"time"

	"lemp/internal/core"
	"lemp/internal/matrix"
	"lemp/internal/retrieval"
)

// Entry is one large entry of QᵀP: Value = (query column Query)ᵀ·(probe
// column Probe).
type Entry = retrieval.Entry

// TopKRows holds a Row-Top-k result: TopKRows[i] lists query i's top
// entries by decreasing value.
type TopKRows = retrieval.TopK

// Stats reports wall-clock phases and pruning effectiveness of a run.
type Stats = core.Stats

// Options configure an Index; the zero value selects the paper's defaults.
type Options = core.Options

// Algorithm selects the bucket-level retrieval method.
type Algorithm = core.Algorithm

// Bucket algorithms, named as in the paper's LEMP-X variants.
const (
	// AlgorithmLI mixes LENGTH and INCR (default; the paper's winner).
	AlgorithmLI = core.AlgLI
	// AlgorithmL is pure length-based pruning.
	AlgorithmL = core.AlgL
	// AlgorithmC is pure coordinate-based pruning.
	AlgorithmC = core.AlgC
	// AlgorithmI is pure incremental pruning.
	AlgorithmI = core.AlgI
	// AlgorithmLC mixes LENGTH and COORD.
	AlgorithmLC = core.AlgLC
	// AlgorithmTA runs the threshold algorithm per bucket.
	AlgorithmTA = core.AlgTA
	// AlgorithmTree runs a cover tree per bucket.
	AlgorithmTree = core.AlgTree
	// AlgorithmL2AP runs an L2AP index per bucket.
	AlgorithmL2AP = core.AlgL2AP
	// AlgorithmBLSH prunes with BayesLSH-Lite signatures (approximate:
	// each true result is missed with probability ≤ Options.Epsilon).
	AlgorithmBLSH = core.AlgBLSH
)

// ParseAlgorithm resolves a LEMP-X suffix such as "LI" or "l2ap".
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// Index is a LEMP index over a probe matrix, ready to answer Above-θ and
// Row-Top-k queries. Build one with New; it is safe for concurrent reads
// only through a single retrieval call at a time (use WithParallelism or
// Options.Parallelism for intra-call parallelism).
type Index struct {
	inner *core.Index
}

// New preprocesses the probe matrix into a LEMP index (bucketization by
// vector length; per-bucket search indexes are built lazily during
// retrieval). The matrix must not be mutated while the index is in use.
func New(probe *Matrix, opts Options) (*Index, error) {
	inner, err := core.NewIndex(probe, opts)
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner}, nil
}

// N returns the number of indexed probe vectors.
func (ix *Index) N() int { return ix.inner.N() }

// R returns the vector dimension.
func (ix *Index) R() int { return ix.inner.R() }

// NumBuckets returns the number of probe buckets.
func (ix *Index) NumBuckets() int { return ix.inner.NumBuckets() }

// SidecarBytes returns the memory held by the quantized screening sidecar
// (Options.Quantize), 0 when screening is off.
func (ix *Index) SidecarBytes() int { return ix.inner.SidecarBytes() }

// BucketInfo describes one probe bucket (size, length range, lazy-index and
// tuning state).
type BucketInfo = core.BucketInfo

// Buckets reports per-bucket state in decreasing-length order; tuning
// fields are meaningful after a retrieval call with a tuning algorithm.
func (ix *Index) Buckets() []BucketInfo { return ix.inner.Buckets() }

// PrepTime returns the preprocessing wall-clock time.
func (ix *Index) PrepTime() time.Duration { return ix.inner.PrepTime() }

// AboveTheta returns every entry of QᵀP with value ≥ theta (θ > 0), in
// unspecified order. It is a wrapper over Retrieve with the AboveTheta
// option and a background context; for very large result sets prefer
// streaming (AboveThetaFunc or the Stream option), which does not
// materialize entries.
func (ix *Index) AboveTheta(q *Matrix, theta float64) ([]Entry, Stats, error) {
	res, err := ix.Retrieve(context.Background(), q, AboveTheta(theta))
	if err != nil {
		return nil, Stats{}, err
	}
	return res.Entries, res.Stats, nil
}

// AboveThetaFunc streams every entry of QᵀP with value ≥ theta to emit. It
// is a wrapper over Retrieve with the AboveTheta and Stream options and a
// background context. The Entry passed to emit must not be retained.
func (ix *Index) AboveThetaFunc(q *Matrix, theta float64, emit func(Entry)) (Stats, error) {
	res, err := ix.Retrieve(context.Background(), q, AboveTheta(theta), Stream(emit))
	if err != nil {
		return Stats{}, err
	}
	return res.Stats, nil
}

// RowTopK returns, for every query vector, its k probe vectors with the
// largest inner products, by decreasing value (fewer than k when the index
// holds fewer probes). Ties are broken arbitrarily. It is a wrapper over
// Retrieve with the TopK option and a background context.
func (ix *Index) RowTopK(q *Matrix, k int) (TopKRows, Stats, error) {
	res, err := ix.Retrieve(context.Background(), q, TopK(k))
	if err != nil {
		return nil, Stats{}, err
	}
	return res.TopK, res.Stats, nil
}

// ApproxOptions tune approximate Row-Top-k (cluster count, candidate
// expansion); see the Approx option.
type ApproxOptions = core.ApproxOptions

// RowTopKApprox answers Row-Top-k approximately by clustering the queries
// and retrieving exactly only for cluster centroids (the scheme of
// Koenigstein et al. the paper cites as composable with LEMP). Values are
// exact inner products, but some true top-k members may be missing; use
// Recall to quantify quality against an exact run. It is a wrapper over
// Retrieve with the TopK and Approx options and a background context.
func (ix *Index) RowTopKApprox(q *Matrix, k int, opts ApproxOptions) (TopKRows, Stats, error) {
	res, err := ix.Retrieve(context.Background(), q, TopK(k), Approx(opts))
	if err != nil {
		return nil, Stats{}, err
	}
	return res.TopK, res.Stats, nil
}

// Recall returns the average fraction of exact top-k entries recovered by
// an approximate run, per query.
func Recall(exact, approx TopKRows) float64 { return core.Recall(exact, approx) }

// MergeTopK k-way-merges Row-Top-k results obtained from disjoint shards of
// one probe matrix into a single global result. Each part must hold one row
// per query (sorted by decreasing value, as Row-Top-k returns them) with
// probe ids already remapped to the global id space; merged rows keep the k
// largest entries overall. It is the merge step used by sharded serving.
func MergeTopK(k int, parts ...TopKRows) TopKRows { return retrieval.MergeTopK(k, parts...) }

// SortEntries orders entries canonically by (Query, Probe) ascending, the
// deterministic order used when emitting Above-θ result sets.
func SortEntries(entries []Entry) { retrieval.Sort(entries) }

// Matrix is a tall-and-skinny factor matrix: n vectors of dimension r,
// where vector j is the paper's column j.
type Matrix = matrix.Matrix
