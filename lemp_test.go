package lemp_test

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"lemp"
)

// fig1 returns the paper's running example (Fig. 1): user and movie factor
// matrices whose product contains known entries.
func fig1(t *testing.T) (q, p *lemp.Matrix) {
	t.Helper()
	q, err := lemp.MatrixFromVectors([][]float64{
		{3.2, -0.4}, {3.1, -0.2}, {0, 1.8}, {-0.4, 1.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err = lemp.MatrixFromVectors([][]float64{
		{1.6, 0.6}, {1.3, 0.8}, {0.7, 2.7}, {1, 2.8}, {0.4, 2.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return q, p
}

func TestQuickstartAboveTheta(t *testing.T) {
	q, p := fig1(t)
	index, err := lemp.New(p, lemp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	entries, st, err := index.AboveTheta(q, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 { // the bold entries of Fig. 1b
		t.Fatalf("got %d entries, want 10", len(entries))
	}
	if st.Results != 10 || st.Queries != 4 {
		t.Errorf("stats %+v", st)
	}
	// Spot-check the largest: Charlie–Amelie = 1.8·2.8 = 5.04 (the paper's
	// Fig. 1b prints it rounded to 5.0).
	found := false
	for _, e := range entries {
		if e.Query == 2 && e.Probe == 3 {
			found = true
			if math.Abs(e.Value-5.04) > 1e-12 {
				t.Errorf("Charlie-Amelie = %g, want 5.04", e.Value)
			}
		}
	}
	if !found {
		t.Error("missing Charlie-Amelie entry")
	}
}

func TestQuickstartRowTopK(t *testing.T) {
	q, p := fig1(t)
	index, err := lemp.New(p, lemp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	top, _, err := index.RowTopK(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1b: Adam→Die Hard, Bob→Die Hard, Charlie→Amelie, Dennis→Twilight(4.9)
	wantProbe := []int{0, 0, 3, 3} // Dennis: Amelie 4.9 vs Twilight 4.9 tie? compute: Dennis=(-0.4,1.9): Twilight=0.7*-0.4+2.7*1.9=4.85; Amelie=-0.4+5.32=4.92 → Amelie.
	for u, want := range wantProbe {
		if top[u][0].Probe != want {
			t.Errorf("user %d top-1 probe %d want %d (value %g)", u, top[u][0].Probe, want, top[u][0].Value)
		}
	}
}

func TestAboveThetaFuncStreams(t *testing.T) {
	q, p := fig1(t)
	index, _ := lemp.New(p, lemp.Options{})
	var n int
	st, err := index.AboveThetaFunc(q, 3.0, func(lemp.Entry) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || int(st.Results) != 10 {
		t.Errorf("streamed %d entries, stats %d", n, st.Results)
	}
}

func TestAllAlgorithmsThroughPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vecs := make([][]float64, 500)
	for i := range vecs {
		v := make([]float64, 6)
		for f := range v {
			v[f] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	p, _ := lemp.MatrixFromVectors(vecs)
	q, _ := lemp.MatrixFromVectors(vecs[:40])
	reference, _, err := func() ([]lemp.Entry, lemp.Stats, error) {
		ix, _ := lemp.New(p, lemp.Options{Algorithm: lemp.AlgorithmL})
		return ix.AboveTheta(q, 4.0)
	}()
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []lemp.Algorithm{
		lemp.AlgorithmLI, lemp.AlgorithmLC, lemp.AlgorithmI, lemp.AlgorithmC,
		lemp.AlgorithmTA, lemp.AlgorithmTree, lemp.AlgorithmL2AP,
	} {
		ix, err := lemp.New(p, lemp.Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("New(%v): %v", alg, err)
		}
		got, _, err := ix.AboveTheta(q, 4.0)
		if err != nil {
			t.Fatalf("AboveTheta(%v): %v", alg, err)
		}
		if len(got) != len(reference) {
			t.Errorf("alg %v: %d entries, want %d", alg, len(got), len(reference))
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	a, err := lemp.ParseAlgorithm("li")
	if err != nil || a != lemp.AlgorithmLI {
		t.Errorf("ParseAlgorithm(li) = %v, %v", a, err)
	}
	if _, err := lemp.ParseAlgorithm("nope"); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestIndexAccessors(t *testing.T) {
	_, p := fig1(t)
	ix, _ := lemp.New(p, lemp.Options{})
	if ix.N() != 5 || ix.R() != 2 {
		t.Errorf("N=%d R=%d", ix.N(), ix.R())
	}
	if ix.NumBuckets() < 1 {
		t.Errorf("buckets %d", ix.NumBuckets())
	}
	if ix.PrepTime() < 0 {
		t.Errorf("prep time %v", ix.PrepTime())
	}
}

func TestMatrixHelpersAndLoadMatrix(t *testing.T) {
	m := lemp.NewMatrix(3, 2)
	copy(m.Vec(0), []float64{1, 2, 3})
	copy(m.Vec(1), []float64{4, 5, 6})

	dir := t.TempDir()
	binPath := filepath.Join(dir, "m.bin")
	csvPath := filepath.Join(dir, "m.csv")

	var bin bytes.Buffer
	if err := lemp.WriteMatrix(&bin, m); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := lemp.WriteMatrixCSV(&csv, m); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(csvPath, csv.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{binPath, csvPath} {
		got, err := lemp.LoadMatrix(path)
		if err != nil {
			t.Fatalf("LoadMatrix(%s): %v", path, err)
		}
		if got.N() != 2 || got.R() != 3 || got.Vec(1)[2] != 6 {
			t.Errorf("%s: wrong contents", path)
		}
	}

	if _, err := lemp.MatrixFromData(2, 2, []float64{1, 2, 3}); err == nil {
		t.Error("bad FromData accepted")
	}
	rt, err := lemp.ReadMatrix(&bin)
	if err == nil && rt.N() != 2 {
		t.Error("ReadMatrix after drain should fail or be empty")
	}
}
