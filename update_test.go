package lemp_test

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"lemp"
	"lemp/internal/data"
)

// sortTopRow orders one top-k row canonically for comparison.
func sortTopRow(row []lemp.Entry) {
	sort.Slice(row, func(a, b int) bool {
		if row[a].Value != row[b].Value {
			return row[a].Value > row[b].Value
		}
		return row[a].Probe < row[b].Probe
	})
}

// mutateSmoke applies a deterministic batch of adds, removes and updates.
func mutateSmoke(t *testing.T, ix *lemp.Index, r int) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	vec := func() []float64 {
		v := make([]float64, r)
		for f := range v {
			v[f] = rng.NormFloat64()
		}
		return v
	}
	ups := []lemp.ProbeUpdate{
		{Op: lemp.OpAdd, ID: lemp.AutoID, Vec: vec()},
		{Op: lemp.OpAdd, ID: lemp.AutoID, Vec: vec()},
		{Op: lemp.OpRemove, ID: 3},
		{Op: lemp.OpRemove, ID: 250},
		{Op: lemp.OpUpdate, ID: 10, Vec: vec()},
		{Op: lemp.OpUpdate, ID: 501, Vec: vec()},
	}
	if _, err := ix.ApplyUpdates(ups); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.ApplyUpdates([]lemp.ProbeUpdate{
		{Op: lemp.OpAdd, ID: lemp.AutoID, Vec: vec()},
		{Op: lemp.OpRemove, ID: 7},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestMutatedSnapshotRoundTrip: a snapshot of a mutated index (compacted
// on save) must load into an index with byte-identical results, preserved
// external ids, and a continued epoch / id sequence.
func TestMutatedSnapshotRoundTrip(t *testing.T) {
	q, p := data.Smoke.Generate()
	ix, err := lemp.New(p, lemp.Options{TuneByCost: true})
	if err != nil {
		t.Fatal(err)
	}
	mutateSmoke(t, ix, p.R())

	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := lemp.LoadIndex(bytes.NewReader(buf.Bytes()), lemp.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := loaded.N(), ix.N(); got != want {
		t.Fatalf("loaded N %d, want %d", got, want)
	}
	if got, want := loaded.Epoch(), ix.Epoch(); got != want {
		t.Fatalf("loaded epoch %d, want %d", got, want)
	}
	if got, want := loaded.NextID(), ix.NextID(); got != want {
		t.Fatalf("loaded NextID %d, want %d", got, want)
	}
	gotIDs, wantIDs := loaded.LiveIDs(), ix.LiveIDs()
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("loaded %d live ids, want %d", len(gotIDs), len(wantIDs))
	}
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("live id %d: got %d, want %d", i, gotIDs[i], wantIDs[i])
		}
	}

	const k = 9
	wantTop, _, err := ix.RowTopK(q, k)
	if err != nil {
		t.Fatal(err)
	}
	gotTop, _, err := loaded.RowTopK(q, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantTop {
		sortTopRow(wantTop[i])
		sortTopRow(gotTop[i])
		if len(gotTop[i]) != len(wantTop[i]) {
			t.Fatalf("query %d: %d entries, want %d", i, len(gotTop[i]), len(wantTop[i]))
		}
		for j := range wantTop[i] {
			if gotTop[i][j].Probe != wantTop[i][j].Probe || gotTop[i][j].Value != wantTop[i][j].Value {
				t.Fatalf("query %d entry %d: got %+v, want %+v", i, j, gotTop[i][j], wantTop[i][j])
			}
		}
	}
	theta := 1.0
	want, _, err := ix.AboveTheta(q, theta)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := loaded.AboveTheta(q, theta)
	if err != nil {
		t.Fatal(err)
	}
	lemp.SortEntries(want)
	lemp.SortEntries(got)
	if len(got) != len(want) {
		t.Fatalf("above-θ: %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("above-θ entry %d: got %+v, want %+v", i, got[i], want[i])
		}
	}

	// The loaded index must keep mutating correctly from where the
	// original left off.
	id, err := loaded.AddProbe(make([]float64, p.R()))
	if err != nil {
		t.Fatal(err)
	}
	if id != ix.NextID() {
		t.Fatalf("post-load add assigned id %d, want %d", id, ix.NextID())
	}
	if loaded.Epoch() != ix.Epoch()+1 {
		t.Fatalf("post-load epoch %d, want %d", loaded.Epoch(), ix.Epoch()+1)
	}
}

// TestUnmutatedSnapshotStaysVersion1: an index that never saw an update
// must keep writing byte-identical version-1 snapshots (the format bump is
// paid only when external-id state exists).
func TestUnmutatedSnapshotStaysVersion1(t *testing.T) {
	_, p := data.Smoke.Generate()
	ix, err := lemp.New(p, lemp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if got := raw[8]; got != 1 {
		t.Fatalf("unmutated snapshot has version %d, want 1", got)
	}
}
