package lemp

import (
	"io"
	"os"

	"lemp/internal/matrix"
)

// Matrix construction and I/O conveniences, re-exported from the internal
// matrix package so library users never import internal paths.

// NewMatrix returns an r-dimensional matrix with n zero vectors.
func NewMatrix(r, n int) *Matrix { return matrix.New(r, n) }

// MatrixFromVectors builds a matrix from equal-length vectors (copied).
func MatrixFromVectors(vs [][]float64) (*Matrix, error) { return matrix.FromVectors(vs) }

// MatrixFromData wraps an existing backing slice of n vectors of dimension
// r without copying; len(data) must equal r*n.
func MatrixFromData(r, n int, data []float64) (*Matrix, error) {
	return matrix.FromData(r, n, data)
}

// ReadMatrix reads a matrix in the library's binary format (LEMPMAT1).
func ReadMatrix(r io.Reader) (*Matrix, error) { return matrix.ReadBinary(r) }

// WriteMatrix writes a matrix in the library's binary format (LEMPMAT1).
func WriteMatrix(w io.Writer, m *Matrix) error { return matrix.WriteBinary(w, m) }

// ReadMatrixCSV reads one comma-separated vector per line.
func ReadMatrixCSV(r io.Reader) (*Matrix, error) { return matrix.ReadCSV(r) }

// WriteMatrixCSV writes one comma-separated vector per line.
func WriteMatrixCSV(w io.Writer, m *Matrix) error { return matrix.WriteCSV(w, m) }

// LoadMatrix reads a matrix file, choosing the binary or CSV decoder by the
// file's leading bytes.
func LoadMatrix(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && n == 0 {
		return matrix.New(0, 0), nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if string(magic[:n]) == "LEMPMAT1" {
		return matrix.ReadBinary(f)
	}
	return matrix.ReadCSV(f)
}
