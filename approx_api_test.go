package lemp_test

import (
	"math/rand"
	"testing"

	"lemp"
	"lemp/internal/vecmath"
)

// The approximate retrieval path through the public facade: clustered
// queries, recall against the exact answer, and options passthrough.
func TestRowTopKApproxPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const (
		groups = 8
		users  = 400
		items  = 600
		r      = 10
		k      = 5
	)
	q := lemp.NewMatrix(r, users)
	centers := lemp.NewMatrix(r, groups)
	for c := 0; c < groups; c++ {
		v := centers.Vec(c)
		for f := range v {
			v[f] = rng.NormFloat64()
		}
		vecmath.Normalize(v, v)
	}
	for i := 0; i < users; i++ {
		v := q.Vec(i)
		center := centers.Vec(rng.Intn(groups))
		for f := range v {
			v[f] = center[f] + 0.05*rng.NormFloat64()
		}
	}
	p := lemp.NewMatrix(r, items)
	for i := 0; i < items; i++ {
		v := p.Vec(i)
		for f := range v {
			v[f] = rng.NormFloat64()
		}
	}

	index, err := lemp.New(p, lemp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact, _, err := index.RowTopK(q, k)
	if err != nil {
		t.Fatal(err)
	}
	approx, st, err := index.RowTopKApprox(q, k, lemp.ApproxOptions{Clusters: groups, Expand: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rec := lemp.Recall(exact, approx); rec < 0.9 {
		t.Errorf("recall %.3f through public API, want ≥ 0.9", rec)
	}
	if st.Queries != users {
		t.Errorf("stats queries %d", st.Queries)
	}
	if rec := lemp.Recall(exact, exact); rec != 1 {
		t.Errorf("self-recall %g", rec)
	}
}

func TestParallelOptionsThroughPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	p := lemp.NewMatrix(6, 300)
	q := lemp.NewMatrix(6, 80)
	for _, m := range []*lemp.Matrix{p, q} {
		d := m.Data()
		for i := range d {
			d[i] = rng.NormFloat64()
		}
	}
	serial, err := lemp.New(p, lemp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := lemp.New(p, lemp.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantTop, _, _ := serial.RowTopK(q, 3)
	gotTop, _, _ := parallel.RowTopK(q, 3)
	for i := range wantTop {
		for j := range wantTop[i] {
			if wantTop[i][j].Value != gotTop[i][j].Value {
				t.Fatalf("row %d rank %d: %g vs %g", i, j, gotTop[i][j].Value, wantTop[i][j].Value)
			}
		}
	}
	want, _, _ := serial.AboveTheta(q, 3)
	got, _, _ := parallel.AboveTheta(q, 3)
	if len(want) != len(got) {
		t.Fatalf("parallel Above-θ %d entries, serial %d", len(got), len(want))
	}
}
