package lemp

import (
	"lemp/internal/core"
)

// Dynamic probe updates. An Index is no longer frozen at build time: probes
// can be added, removed and replaced by stable external id, with small
// changes absorbed by a cheap delta layer (per-index overlay buckets plus a
// tombstone set, scanned alongside the main buckets) and accumulated drift
// folded back into a full re-bucketization by Compact. Results remain
// exact after any mutation sequence: a mutated index answers queries
// identically to an index freshly built over the same live probe set.
//
// Concurrency: mutation calls follow the same contract as retrieval — one
// call at a time per Index. Serving layers that must keep answering
// queries while updates land use WithUpdates to derive a new index
// copy-on-write and swap it in atomically; see internal/server.

// ProbeUpdate is one mutation of the probe set: an OpAdd, OpRemove or
// OpUpdate addressed by external probe id.
type ProbeUpdate = core.ProbeUpdate

// UpdateOp is the kind of a ProbeUpdate.
type UpdateOp = core.UpdateOp

// Probe mutation kinds.
const (
	// OpAdd inserts a new probe (ID AutoID assigns the next free id).
	OpAdd = core.OpAdd
	// OpRemove deletes a live probe by id.
	OpRemove = core.OpRemove
	// OpUpdate replaces a live probe's vector, keeping its id.
	OpUpdate = core.OpUpdate
)

// AutoID, as the ID of an OpAdd, lets the index assign the next free id.
const AutoID = core.AutoID

// MaxProbeID is the largest assignable external probe id.
const MaxProbeID = core.MaxProbeID

// NewWithIDs is New with caller-chosen external probe ids: ids[i] names
// probe vector i in every result and mutation. ids must be unique and
// non-negative; nil assigns 0..n-1. Shards of a partitioned catalog use
// this to index directly in the global id space.
func NewWithIDs(probe *Matrix, ids []int32, opts Options) (*Index, error) {
	inner, err := core.NewIndexWithIDs(probe, ids, opts)
	if err != nil {
		return nil, err
	}
	return &Index{inner: inner}, nil
}

// ApplyUpdates performs a batch of probe mutations atomically: the index
// is untouched unless every op validates, and the epoch advances once per
// successful batch. The returned slice holds each op's affected id (the
// assigned id for AutoID adds). Must not run concurrently with retrieval
// or other mutations on this index.
func (ix *Index) ApplyUpdates(ups []ProbeUpdate) ([]int32, error) {
	return ix.inner.Apply(ups)
}

// WithUpdates derives a new index with the batch applied, leaving the
// receiver untouched: the two share the immutable main structure
// (copy-on-write), so derivation costs only the delta work. Retrieval
// calls on the two indexes must still be serialized against each other —
// they share main-bucket tuning state and lazy per-bucket indexes.
func (ix *Index) WithUpdates(ups []ProbeUpdate) (*Index, []int32, error) {
	inner, ids, err := ix.inner.WithUpdates(ups)
	if err != nil {
		return nil, nil, err
	}
	return &Index{inner: inner}, ids, nil
}

// AddProbe inserts a new probe vector and returns its assigned id.
func (ix *Index) AddProbe(vec []float64) (int32, error) { return ix.inner.AddProbe(vec) }

// AddProbeWithID inserts a new probe vector under the caller's id, which
// must not be live.
func (ix *Index) AddProbeWithID(id int32, vec []float64) error {
	return ix.inner.AddProbeWithID(id, vec)
}

// RemoveProbe deletes the live probe with the given id.
func (ix *Index) RemoveProbe(id int32) error { return ix.inner.RemoveProbe(id) }

// UpdateProbe replaces the vector of the live probe with the given id.
func (ix *Index) UpdateProbe(id int32, vec []float64) error {
	return ix.inner.UpdateProbe(id, vec)
}

// Epoch returns the index's mutation epoch: 0 at build, +1 per applied
// update batch. Compaction does not advance it (results are unchanged).
func (ix *Index) Epoch() uint64 { return ix.inner.Epoch() }

// NextID returns the id the next AutoID add would receive.
func (ix *Index) NextID() int32 { return ix.inner.NextID() }

// LiveIDs returns the external ids of all live probes in ascending order.
func (ix *Index) LiveIDs() []int32 { return ix.inner.LiveIDs() }

// ProbeIDs returns the external ids of the Probe() matrix's columns, in
// column order, or nil when the ids are the column numbers themselves.
// Delta-layer mutations are not reflected — Compact first (snapshot-loaded
// indexes are always compacted). Re-sharding uses this to rebuild shards
// without renumbering the catalog.
func (ix *Index) ProbeIDs() []int32 { return ix.inner.ProbeIDs() }

// DeltaMass reports accumulated mutation drift: (tombstones + overlay
// vectors) / live probes. See MaybeCompact.
func (ix *Index) DeltaMass() float64 { return ix.inner.DeltaMass() }

// Compact folds the delta layer into a fresh bucketization over the live
// probe set (ids preserved), restoring full pruning effectiveness. Results
// before and after are identical. Same concurrency contract as
// ApplyUpdates.
func (ix *Index) Compact() { ix.inner.Compact() }

// MaybeCompact compacts when DeltaMass exceeds the threshold, reporting
// whether it did.
func (ix *Index) MaybeCompact(threshold float64) bool { return ix.inner.MaybeCompact(threshold) }
